//! The journal mapping table (JMT).
//!
//! Maps each key to the journal location of its **latest** version — the
//! paper's JMT with `NEW`/`OLD` flags collapses to "latest wins" because
//! only non-`OLD` entries are checkpointed (Algorithm 1 skips the rest);
//! superseded versions are still accounted as duplicates for statistics.
//!
//! KV keys are dense integers below the layout's record count, so the
//! table is a flat `Vec` indexed by key (like the FTL's page-mapped L2P
//! array, paper §II) with a small sorted overflow vector for sparse keys
//! above the dense limit (e.g. the superblock pseudo-key). The dense
//! region grows lazily to the highest key touched, and the overflow is
//! kept sorted, so iteration and checkpoint drains remain in ascending
//! key order — the determinism the checkpoint processor relies on.

/// Keys below this bound live in the dense array; anything higher goes to
/// the sorted overflow (workloads use dense keys well below this).
const DENSE_LIMIT: u64 = 1 << 22;

/// One JMT entry: where the latest journal copy of a key lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JmtEntry {
    /// Journal location (start sector).
    pub journal_lba: u64,
    /// Sectors spanned by the log.
    pub sectors: u32,
    /// Version recorded.
    pub version: u64,
    /// Raw (pre-alignment) value bytes.
    pub raw_bytes: u32,
    /// Stored (aligned/compressed) bytes.
    pub stored_bytes: u32,
    /// True when the log shares its sector with other records (`MERGED`).
    pub merged: bool,
    /// True when the log is a deletion tombstone.
    pub tombstone: bool,
}

/// Journal mapping table for the active journal zone.
///
/// # Examples
///
/// ```
/// use checkin_core::{Jmt, JmtEntry};
///
/// let mut jmt = Jmt::new();
/// jmt.record(7, JmtEntry { journal_lba: 100, sectors: 1, version: 1, raw_bytes: 400, stored_bytes: 512, merged: false, tombstone: false });
/// jmt.record(7, JmtEntry { journal_lba: 101, sectors: 1, version: 2, raw_bytes: 400, stored_bytes: 512, merged: false, tombstone: false });
/// assert_eq!(jmt.lookup(7).unwrap().version, 2);
/// assert_eq!(jmt.superseded(), 1); // the v1 log went stale ("OLD")
/// ```
#[derive(Debug, Clone, Default)]
pub struct Jmt {
    /// Key-indexed entries for keys below [`DENSE_LIMIT`]; grows lazily to
    /// the highest key recorded. The allocation is kept across checkpoint
    /// drains so steady-state operation stops allocating.
    dense: Vec<Option<JmtEntry>>,
    /// Sparse keys at or above [`DENSE_LIMIT`], sorted by key.
    overflow: Vec<(u64, JmtEntry)>,
    live: usize,
    appended: u64,
    superseded: u64,
    raw_bytes: u64,
    stored_bytes: u64,
}

impl Jmt {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty table with the dense region pre-reserved for keys below
    /// `key_hint` (avoids regrowth during the load phase).
    pub fn with_key_capacity(key_hint: u64) -> Self {
        let mut jmt = Self::default();
        jmt.dense.reserve(key_hint.min(DENSE_LIMIT) as usize);
        jmt
    }

    /// Records a new journal log for `key`, superseding any previous one.
    pub fn record(&mut self, key: u64, entry: JmtEntry) {
        self.appended += 1;
        self.raw_bytes += entry.raw_bytes as u64;
        self.stored_bytes += entry.stored_bytes as u64;
        let replaced = if key < DENSE_LIMIT {
            let idx = key as usize;
            if idx >= self.dense.len() {
                self.dense.resize(idx + 1, None);
            }
            self.dense[idx].replace(entry).is_some()
        } else {
            match self.overflow.binary_search_by_key(&key, |&(k, _)| k) {
                Ok(pos) => {
                    self.overflow[pos].1 = entry;
                    true
                }
                Err(pos) => {
                    self.overflow.insert(pos, (key, entry));
                    false
                }
            }
        };
        if replaced {
            self.superseded += 1;
        } else {
            self.live += 1;
        }
    }

    /// Latest journal location of `key`.
    pub fn lookup(&self, key: u64) -> Option<&JmtEntry> {
        if key < DENSE_LIMIT {
            self.dense.get(key as usize)?.as_ref()
        } else {
            self.overflow
                .binary_search_by_key(&key, |&(k, _)| k)
                .ok()
                .and_then(|pos| self.overflow.get(pos))
                .map(|(_, entry)| entry)
        }
    }

    /// Distinct keys with live journal logs.
    pub fn live_keys(&self) -> usize {
        self.live
    }

    /// Total logs appended to this zone (live + superseded).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Logs that went stale because the key was updated again (the `OLD`
    /// flag population).
    pub fn superseded(&self) -> u64 {
        self.superseded
    }

    /// Raw bytes journaled into this zone.
    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes
    }

    /// Stored (post-alignment) bytes journaled into this zone.
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// Journal space overhead factor: stored / raw (1.0 = no padding).
    pub fn space_overhead(&self) -> f64 {
        if self.raw_bytes == 0 {
            1.0
        } else {
            self.stored_bytes as f64 / self.raw_bytes as f64
        }
    }

    /// Iterates live entries in key order (deterministic checkpoints).
    /// Dense keys all sort below overflow keys, so chaining preserves
    /// the global order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &JmtEntry)> + '_ {
        self.dense
            .iter()
            .enumerate()
            .filter_map(|(k, slot)| slot.as_ref().map(|e| (k as u64, e)))
            .chain(self.overflow.iter().map(|(k, e)| (*k, e)))
    }

    /// Drains the table for a checkpoint into `out` (cleared first), in
    /// key order, resetting all statistics. The caller's buffer and the
    /// dense array's allocation are both reused, so steady-state
    /// checkpoints allocate nothing.
    pub fn drain_into(&mut self, out: &mut Vec<(u64, JmtEntry)>) {
        out.clear();
        out.reserve(self.live);
        for (k, slot) in self.dense.iter_mut().enumerate() {
            if let Some(e) = slot.take() {
                out.push((k as u64, e));
            }
        }
        out.append(&mut self.overflow);
        self.live = 0;
        self.appended = 0;
        self.superseded = 0;
        self.raw_bytes = 0;
        self.stored_bytes = 0;
    }

    /// Drains the table for a checkpoint, returning the live entries in
    /// key order and resetting all statistics. Prefer [`Jmt::drain_into`]
    /// on hot paths; this convenience form allocates the returned vector.
    pub fn take_for_checkpoint(&mut self) -> Vec<(u64, JmtEntry)> {
        let mut out = Vec::new();
        self.drain_into(&mut out);
        out
    }

    /// True when nothing has been journaled since the last checkpoint.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(lba: u64, version: u64) -> JmtEntry {
        JmtEntry {
            journal_lba: lba,
            sectors: 1,
            version,
            raw_bytes: 400,
            stored_bytes: 512,
            merged: false,
            tombstone: false,
        }
    }

    #[test]
    fn latest_version_wins() {
        let mut j = Jmt::new();
        j.record(1, entry(10, 1));
        j.record(1, entry(20, 2));
        assert_eq!(j.lookup(1).unwrap().journal_lba, 20);
        assert_eq!(j.live_keys(), 1);
        assert_eq!(j.appended(), 2);
        assert_eq!(j.superseded(), 1);
    }

    #[test]
    fn space_overhead_reflects_padding() {
        let mut j = Jmt::new();
        j.record(1, entry(0, 1)); // 400 raw -> 512 stored
        assert!((j.space_overhead() - 1.28).abs() < 1e-9);
        assert_eq!(Jmt::new().space_overhead(), 1.0);
    }

    #[test]
    fn take_for_checkpoint_drains_in_key_order() {
        let mut j = Jmt::new();
        j.record(5, entry(1, 1));
        j.record(2, entry(2, 1));
        j.record(9, entry(3, 1));
        let drained = j.take_for_checkpoint();
        let keys: Vec<u64> = drained.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![2, 5, 9]);
        assert!(j.is_empty());
        assert_eq!(j.appended(), 0);
    }

    #[test]
    fn iter_matches_lookup() {
        let mut j = Jmt::new();
        j.record(3, entry(30, 7));
        let collected: Vec<_> = j.iter().collect();
        assert_eq!(collected.len(), 1);
        assert_eq!(collected[0].0, 3);
        assert_eq!(collected[0].1.version, 7);
    }

    #[test]
    fn sparse_keys_use_overflow_and_stay_ordered() {
        let mut j = Jmt::new();
        let superblock = u64::MAX - 1;
        j.record(superblock, entry(99, 1));
        j.record(3, entry(1, 1));
        j.record(DENSE_LIMIT + 5, entry(50, 1));
        assert_eq!(j.lookup(superblock).unwrap().journal_lba, 99);
        assert_eq!(j.live_keys(), 3);
        let keys: Vec<u64> = j.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![3, DENSE_LIMIT + 5, superblock]);
        // Superseding an overflow key counts like a dense one.
        j.record(superblock, entry(100, 2));
        assert_eq!(j.superseded(), 1);
        let drained = j.take_for_checkpoint();
        assert_eq!(drained.len(), 3);
        assert_eq!(drained.last().unwrap().1.journal_lba, 100);
    }

    #[test]
    fn drain_into_reuses_buffer() {
        let mut j = Jmt::new();
        let mut buf = Vec::new();
        for round in 0..3u64 {
            j.record(1, entry(round, round));
            j.record(2, entry(round, round));
            j.drain_into(&mut buf);
            assert_eq!(buf.len(), 2);
            assert!(j.is_empty());
        }
    }
}
