//! The journal mapping table (JMT).
//!
//! Maps each key to the journal location of its **latest** version — the
//! paper's JMT with `NEW`/`OLD` flags collapses to "latest wins" because
//! only non-`OLD` entries are checkpointed (Algorithm 1 skips the rest);
//! superseded versions are still accounted as duplicates for statistics.

use std::collections::BTreeMap;

/// One JMT entry: where the latest journal copy of a key lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JmtEntry {
    /// Journal location (start sector).
    pub journal_lba: u64,
    /// Sectors spanned by the log.
    pub sectors: u32,
    /// Version recorded.
    pub version: u64,
    /// Raw (pre-alignment) value bytes.
    pub raw_bytes: u32,
    /// Stored (aligned/compressed) bytes.
    pub stored_bytes: u32,
    /// True when the log shares its sector with other records (`MERGED`).
    pub merged: bool,
    /// True when the log is a deletion tombstone.
    pub tombstone: bool,
}

/// Journal mapping table for the active journal zone.
///
/// # Examples
///
/// ```
/// use checkin_core::{Jmt, JmtEntry};
///
/// let mut jmt = Jmt::new();
/// jmt.record(7, JmtEntry { journal_lba: 100, sectors: 1, version: 1, raw_bytes: 400, stored_bytes: 512, merged: false, tombstone: false });
/// jmt.record(7, JmtEntry { journal_lba: 101, sectors: 1, version: 2, raw_bytes: 400, stored_bytes: 512, merged: false, tombstone: false });
/// assert_eq!(jmt.lookup(7).unwrap().version, 2);
/// assert_eq!(jmt.superseded(), 1); // the v1 log went stale ("OLD")
/// ```
#[derive(Debug, Clone, Default)]
pub struct Jmt {
    entries: BTreeMap<u64, JmtEntry>,
    appended: u64,
    superseded: u64,
    raw_bytes: u64,
    stored_bytes: u64,
}

impl Jmt {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a new journal log for `key`, superseding any previous one.
    pub fn record(&mut self, key: u64, entry: JmtEntry) {
        self.appended += 1;
        self.raw_bytes += entry.raw_bytes as u64;
        self.stored_bytes += entry.stored_bytes as u64;
        if self.entries.insert(key, entry).is_some() {
            self.superseded += 1;
        }
    }

    /// Latest journal location of `key`.
    pub fn lookup(&self, key: u64) -> Option<&JmtEntry> {
        self.entries.get(&key)
    }

    /// Distinct keys with live journal logs.
    pub fn live_keys(&self) -> usize {
        self.entries.len()
    }

    /// Total logs appended to this zone (live + superseded).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Logs that went stale because the key was updated again (the `OLD`
    /// flag population).
    pub fn superseded(&self) -> u64 {
        self.superseded
    }

    /// Raw bytes journaled into this zone.
    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes
    }

    /// Stored (post-alignment) bytes journaled into this zone.
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// Journal space overhead factor: stored / raw (1.0 = no padding).
    pub fn space_overhead(&self) -> f64 {
        if self.raw_bytes == 0 {
            1.0
        } else {
            self.stored_bytes as f64 / self.raw_bytes as f64
        }
    }

    /// Iterates live entries in key order (deterministic checkpoints).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &JmtEntry)> + '_ {
        self.entries.iter().map(|(&k, e)| (k, e))
    }

    /// Drains the table for a checkpoint, returning the live entries in
    /// key order and resetting all statistics.
    pub fn take_for_checkpoint(&mut self) -> Vec<(u64, JmtEntry)> {
        let out = self.entries.iter().map(|(&k, &e)| (k, e)).collect();
        *self = Jmt::new();
        out
    }

    /// True when nothing has been journaled since the last checkpoint.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(lba: u64, version: u64) -> JmtEntry {
        JmtEntry {
            journal_lba: lba,
            sectors: 1,
            version,
            raw_bytes: 400,
            stored_bytes: 512,
            merged: false,
            tombstone: false,
        }
    }

    #[test]
    fn latest_version_wins() {
        let mut j = Jmt::new();
        j.record(1, entry(10, 1));
        j.record(1, entry(20, 2));
        assert_eq!(j.lookup(1).unwrap().journal_lba, 20);
        assert_eq!(j.live_keys(), 1);
        assert_eq!(j.appended(), 2);
        assert_eq!(j.superseded(), 1);
    }

    #[test]
    fn space_overhead_reflects_padding() {
        let mut j = Jmt::new();
        j.record(1, entry(0, 1)); // 400 raw -> 512 stored
        assert!((j.space_overhead() - 1.28).abs() < 1e-9);
        assert_eq!(Jmt::new().space_overhead(), 1.0);
    }

    #[test]
    fn take_for_checkpoint_drains_in_key_order() {
        let mut j = Jmt::new();
        j.record(5, entry(1, 1));
        j.record(2, entry(2, 1));
        j.record(9, entry(3, 1));
        let drained = j.take_for_checkpoint();
        let keys: Vec<u64> = drained.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![2, 5, 9]);
        assert!(j.is_empty());
        assert_eq!(j.appended(), 0);
    }

    #[test]
    fn iter_matches_lookup() {
        let mut j = Jmt::new();
        j.record(3, entry(30, 7));
        let collected: Vec<_> = j.iter().collect();
        assert_eq!(collected.len(), 1);
        assert_eq!(collected[0].0, 3);
        assert_eq!(collected[0].1.version, 7);
    }
}
