//! Journaling layer: Algorithm 2 alignment, the JMT, and the journal
//! manager over the double-buffered journal area.

mod aligner;
mod jmt;
mod manager;

pub use aligner::{
    align_log, align_log_to, raw_log_bytes, AlignedLog, LogClass, CLASS_STEP, LOG_HEADER_BYTES,
};
pub use jmt::{Jmt, JmtEntry};
pub use manager::{JournalFull, JournalManager, JournalOptions, RetiringZone};
