//! Sector-aligned journaling — the paper's Algorithm 2.
//!
//! Under Check-In, every journal log is reformatted to the FTL mapping
//! unit before it is written:
//!
//! * values **larger** than one sector are compressed and rounded up to a
//!   whole number of sectors (`FULL`);
//! * values **up to** one sector are rounded to the size classes
//!   {128, 256, 384, 512} B; a 512 B result is `FULL`, smaller ones are
//!   `PARTIAL` and get merged with other partial logs into shared sectors
//!   (`MERGED`) by the journal manager.
//!
//! Conventional journaling (everything except Check-In) appends
//! `header + value` at byte granularity instead, which is what misaligns
//! logs with the mapping unit.

use checkin_ssd::SECTOR_BYTES;

/// Size class granularity (`MAPPING_SIZE / 4` in Algorithm 2).
pub const CLASS_STEP: u32 = SECTOR_BYTES / 4; // 128

/// Per-log header of conventional journaling. The simulator models log
/// framing in the flash OOB/content-tag layer (like record metadata in a
/// real device's spare area), so the in-band header is zero bytes; the
/// constant exists so the accounting shows where a byte-granular header
/// would be charged.
pub const LOG_HEADER_BYTES: u32 = 0;

/// Outcome class of Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogClass {
    /// The log owns whole sectors; eligible for remapping.
    Full,
    /// The log is smaller than a sector and will be merged with other
    /// partial logs into a shared (`MERGED`) sector.
    Partial,
}

/// A journal log after alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlignedLog {
    /// Stored size after compression + rounding (the journal-space cost).
    pub stored_bytes: u32,
    /// Sectors the log occupies when written alone (`Full` logs only;
    /// `Partial` logs share a sector).
    pub sectors: u32,
    /// Full or partial.
    pub class: LogClass,
}

/// Applies Algorithm 2's `Update()` size replacement to one value.
///
/// `compression_ratio` models line 4's `Compress()` for values larger
/// than one sector (1.0 = incompressible).
///
/// # Panics
///
/// Panics if `value_bytes` is zero or the ratio is not in `(0, 1]`.
///
/// # Examples
///
/// ```
/// use checkin_core::{align_log, LogClass};
///
/// // A 300-byte value rounds to the 384 B class and is PARTIAL.
/// let log = align_log(300, 1.0);
/// assert_eq!((log.stored_bytes, log.class), (384, LogClass::Partial));
///
/// // A 2000-byte value compresses (x0.7 = 1400) and rounds to 3 sectors.
/// let log = align_log(2000, 0.7);
/// assert_eq!((log.stored_bytes, log.sectors, log.class), (1536, 3, LogClass::Full));
/// ```
pub fn align_log(value_bytes: u32, compression_ratio: f64) -> AlignedLog {
    align_log_to(value_bytes, compression_ratio, SECTOR_BYTES)
}

/// Algorithm 2 generalised to any FTL mapping unit (`MAPPING_SIZE`):
/// the paper sweeps 512 B – 4 KiB in Fig. 13. Values larger than the
/// mapping unit compress and round to whole units (`FULL`); smaller
/// values round to quarter-unit classes, the largest class being `FULL`
/// and the rest `PARTIAL` (merged into shared units).
///
/// # Panics
///
/// Panics if `value_bytes` is zero, the ratio is outside `(0, 1]`, or
/// `mapping_bytes` is not a positive multiple of the sector size.
pub fn align_log_to(value_bytes: u32, compression_ratio: f64, mapping_bytes: u32) -> AlignedLog {
    assert!(value_bytes > 0, "value must be non-empty");
    assert!(
        compression_ratio > 0.0 && compression_ratio <= 1.0,
        "compression ratio must be in (0, 1]"
    );
    assert!(
        mapping_bytes >= SECTOR_BYTES && mapping_bytes.is_multiple_of(SECTOR_BYTES),
        "mapping unit must be a positive multiple of the sector size"
    );
    let step = mapping_bytes / 4;
    if value_bytes > mapping_bytes {
        let compressed = ((value_bytes as f64 * compression_ratio).ceil() as u32).max(1);
        let units = compressed.div_ceil(mapping_bytes);
        AlignedLog {
            stored_bytes: units * mapping_bytes,
            sectors: units * (mapping_bytes / SECTOR_BYTES),
            class: LogClass::Full,
        }
    } else {
        let class_bytes = value_bytes.div_ceil(step) * step;
        if class_bytes == mapping_bytes {
            AlignedLog {
                stored_bytes: mapping_bytes,
                sectors: mapping_bytes / SECTOR_BYTES,
                class: LogClass::Full,
            }
        } else {
            AlignedLog {
                stored_bytes: class_bytes,
                sectors: mapping_bytes / SECTOR_BYTES,
                class: LogClass::Partial,
            }
        }
    }
}

/// Byte length of a conventional (unaligned) journal log: header plus the
/// raw value.
pub fn raw_log_bytes(value_bytes: u32) -> u32 {
    LOG_HEADER_BYTES + value_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_round_to_classes() {
        for (input, expect) in [
            (1, 128),
            (128, 128),
            (129, 256),
            (256, 256),
            (300, 384),
            (384, 384),
            (385, 512),
            (512, 512),
        ] {
            let log = align_log(input, 1.0);
            assert_eq!(log.stored_bytes, expect, "input {input}");
            assert_eq!(log.sectors, 1);
            let want_class = if expect == 512 {
                LogClass::Full
            } else {
                LogClass::Partial
            };
            assert_eq!(log.class, want_class, "input {input}");
        }
    }

    #[test]
    fn large_values_compress_then_round_to_sectors() {
        let log = align_log(4096, 0.7);
        // 4096 * 0.7 = 2867.2 -> 2868 -> 6 sectors.
        assert_eq!(log.sectors, 6);
        assert_eq!(log.stored_bytes, 3072);
        assert_eq!(log.class, LogClass::Full);
    }

    #[test]
    fn incompressible_large_value() {
        let log = align_log(1025, 1.0);
        assert_eq!(log.sectors, 3);
        assert_eq!(log.stored_bytes, 1536);
    }

    #[test]
    fn alignment_never_loses_capacity_for_the_value() {
        // Stored size must be able to hold the (compressed) value.
        for bytes in [1u32, 100, 512, 513, 1000, 2048, 4096] {
            for ratio in [0.5, 0.7, 1.0] {
                let log = align_log(bytes, ratio);
                let compressed = (bytes as f64 * ratio).ceil() as u32;
                if bytes > SECTOR_BYTES {
                    assert!(log.stored_bytes >= compressed, "{bytes}@{ratio}");
                } else {
                    assert!(log.stored_bytes >= bytes, "{bytes}@{ratio}");
                }
            }
        }
    }

    #[test]
    fn raw_log_adds_header() {
        assert_eq!(raw_log_bytes(1000), 1000 + LOG_HEADER_BYTES);
    }

    #[test]
    fn mapping_unit_parameterisation() {
        // 4 KiB mapping: classes are 1 KiB steps.
        let log = align_log_to(900, 1.0, 4096);
        assert_eq!(log.stored_bytes, 1024);
        assert_eq!(log.class, LogClass::Partial);
        assert_eq!(log.sectors, 8, "partials share one 4 KiB unit");
        let log = align_log_to(4000, 1.0, 4096);
        assert_eq!(log.stored_bytes, 4096);
        assert_eq!(log.class, LogClass::Full);
        // Larger than the unit: compress and round to whole units.
        let log = align_log_to(8192, 0.7, 4096);
        assert_eq!(log.stored_bytes, 8192, "5735 B compressed -> 2 units");
        assert_eq!(log.sectors, 16);
    }

    #[test]
    #[should_panic(expected = "multiple of the sector size")]
    fn bad_mapping_unit_panics() {
        align_log_to(100, 1.0, 700);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_value_panics() {
        align_log(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "compression ratio")]
    fn bad_ratio_panics() {
        align_log(10, 0.0);
    }
}
