//! The journal manager: appends logs to the active zone, maintains the
//! JMT, and (under Check-In) performs sector alignment and partial-log
//! merging.

use checkin_flash::Fragment;
use checkin_ssd::{WriteContent, WriteRequest, SECTOR_BYTES};

use crate::journal::aligner::{align_log_to, raw_log_bytes, LogClass};
use crate::journal::jmt::{Jmt, JmtEntry};
use crate::layout::{Layout, JOURNAL_ZONES};

/// The active journal zone ran out of space: a checkpoint must retire it
/// before more logs can be appended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalFull;

impl std::fmt::Display for JournalFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "active journal zone is full; checkpoint required")
    }
}

impl std::error::Error for JournalFull {}

/// Everything the checkpoint path needs about the retiring zone.
#[derive(Debug, Clone)]
pub struct RetiringZone {
    /// Zone index being retired.
    pub zone: u32,
    /// First sector of the zone.
    pub base_lba: u64,
    /// Sectors actually used (trim this much, rounded up to units).
    pub used_sectors: u64,
    /// Live JMT entries to checkpoint, in key order.
    pub entries: Vec<(u64, JmtEntry)>,
    /// Logs superseded within the zone (duplicates never checkpointed).
    pub superseded: u64,
    /// Raw bytes journaled into the zone.
    pub raw_bytes: u64,
    /// Stored bytes journaled into the zone.
    pub stored_bytes: u64,
}

#[derive(Debug, Clone, Default)]
struct MergeBuffer {
    sector_offset: u64,
    fragments: Vec<Fragment>,
    filled: u32,
}

/// Knobs of the journaling layer, mainly for ablation studies: Check-In's
/// two ingredients (Algorithm 2's compression and partial-log merging)
/// can be disabled independently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JournalOptions {
    /// Reformat logs to the FTL mapping unit (Algorithm 2). False =
    /// conventional sector-padded journaling.
    pub sector_aligned: bool,
    /// Compression ratio for values larger than the mapping unit
    /// (1.0 disables compression).
    pub compression_ratio: f64,
    /// Merge `PARTIAL` logs into shared units. False pads each partial to
    /// a full (remappable) unit instead — trading journal space for
    /// checkpoint copies.
    pub merge_partials: bool,
}

impl JournalOptions {
    /// Conventional journaling (baseline / ISC-A / ISC-B / ISC-C).
    pub fn conventional() -> Self {
        JournalOptions {
            sector_aligned: false,
            compression_ratio: 1.0,
            merge_partials: false,
        }
    }

    /// Check-In's full sector-aligned journaling.
    pub fn check_in(compression_ratio: f64) -> Self {
        JournalOptions {
            sector_aligned: true,
            compression_ratio,
            merge_partials: true,
        }
    }
}

/// Journal state machine over the double-buffered journal area.
///
/// # Examples
///
/// ```
/// use checkin_core::{JournalManager, Layout};
///
/// let layout = Layout::new(100, 4096, 512, 1 << 12);
/// let mut jm = JournalManager::new(layout, true, 0.7);
/// let req = jm.append(7, 1, 300).unwrap();   // partial log -> merged sector
/// assert_eq!(req.sectors, 1);
/// assert!(jm.jmt().lookup(7).unwrap().merged);
/// ```
#[derive(Debug, Clone)]
pub struct JournalManager {
    layout: Layout,
    options: JournalOptions,
    zone: u32,
    head_sectors: u64,
    merge: Option<MergeBuffer>,
    jmt: Jmt,
    /// Entry buffer recycled between checkpoints ([`JournalManager::recycle_zone`]).
    spare_entries: Vec<(u64, JmtEntry)>,
}

impl JournalManager {
    /// Creates a manager starting in zone 0. `sector_aligned` selects
    /// between conventional journaling and Check-In's Algorithm 2 (with
    /// partial merging on).
    pub fn new(layout: Layout, sector_aligned: bool, compression_ratio: f64) -> Self {
        let options = if sector_aligned {
            JournalOptions::check_in(compression_ratio)
        } else {
            JournalOptions::conventional()
        };
        Self::with_options(layout, options)
    }

    /// Creates a manager with explicit [`JournalOptions`] (ablations).
    pub fn with_options(layout: Layout, options: JournalOptions) -> Self {
        JournalManager {
            layout,
            options,
            zone: 0,
            head_sectors: 0,
            merge: None,
            jmt: Jmt::with_key_capacity(layout.record_count()),
            spare_entries: Vec::new(),
        }
    }

    /// The live JMT.
    pub fn jmt(&self) -> &Jmt {
        &self.jmt
    }

    /// Sectors used so far in the active zone.
    pub fn zone_used_sectors(&self) -> u64 {
        self.head_sectors
    }

    /// Mapping units used so far in the active zone (checkpoint trigger
    /// input).
    pub fn zone_used_units(&self) -> u64 {
        self.zone_used_sectors()
            .div_ceil(self.layout.unit_sectors())
    }

    /// True when sector-aligned journaling (Algorithm 2) is active.
    pub fn is_sector_aligned(&self) -> bool {
        self.options.sector_aligned
    }

    /// The journaling options in effect.
    pub fn options(&self) -> &JournalOptions {
        &self.options
    }

    /// Appends one journal log for `(key, version)` with a `value_bytes`
    /// payload. Returns the block-interface write to issue (a plain log,
    /// or a re-write of the shared sector for merged partials).
    ///
    /// # Errors
    ///
    /// [`JournalFull`] when the zone cannot hold the log; the caller must
    /// checkpoint (retiring this zone) and retry.
    pub fn append(
        &mut self,
        key: u64,
        version: u64,
        value_bytes: u32,
    ) -> Result<WriteRequest, JournalFull> {
        if self.options.sector_aligned {
            self.append_aligned(key, version, value_bytes)
        } else {
            self.append_raw(key, version, value_bytes)
        }
    }

    fn zone_base(&self) -> u64 {
        self.layout.journal_base(self.zone)
    }

    /// Conventional journaling appends `header + value` and pads each
    /// synchronous commit to the sector boundary: a committed sector can
    /// never be partially rewritten by a later log, so every log starts
    /// on a fresh sector (this is how WAL-style engines behave on block
    /// devices). No compression, no size classes, no merging.
    fn append_raw(
        &mut self,
        key: u64,
        version: u64,
        value_bytes: u32,
    ) -> Result<WriteRequest, JournalFull> {
        let len = raw_log_bytes(value_bytes);
        let sectors = len.div_ceil(SECTOR_BYTES);
        let start = self.head_sectors;
        if start + sectors as u64 > self.layout.zone_sectors() {
            return Err(JournalFull);
        }
        self.head_sectors += sectors as u64;
        let lba = self.zone_base() + start;
        self.jmt.record(
            key,
            JmtEntry {
                journal_lba: lba,
                sectors,
                version,
                raw_bytes: value_bytes,
                stored_bytes: sectors * SECTOR_BYTES,
                merged: false,
                tombstone: false,
            },
        );
        Ok(WriteRequest {
            lba,
            sectors,
            content: WriteContent::Record {
                key,
                version,
                bytes: value_bytes,
            },
        })
    }

    fn mapping_bytes(&self) -> u32 {
        self.layout.unit_sectors() as u32 * SECTOR_BYTES
    }

    fn append_aligned(
        &mut self,
        key: u64,
        version: u64,
        value_bytes: u32,
    ) -> Result<WriteRequest, JournalFull> {
        let mut log = align_log_to(
            value_bytes,
            self.options.compression_ratio,
            self.mapping_bytes(),
        );
        if log.class == LogClass::Partial && !self.options.merge_partials {
            // Merging ablated: pad the partial up to a full (remappable)
            // unit instead of sharing one.
            log.stored_bytes = self.mapping_bytes();
            log.class = LogClass::Full;
        }
        match log.class {
            LogClass::Full => {
                let start = self.head_sectors;
                if start + log.sectors as u64 > self.layout.zone_sectors() {
                    return Err(JournalFull);
                }
                self.head_sectors += log.sectors as u64;
                let lba = self.zone_base() + start;
                self.jmt.record(
                    key,
                    JmtEntry {
                        journal_lba: lba,
                        sectors: log.sectors,
                        version,
                        raw_bytes: value_bytes,
                        stored_bytes: log.stored_bytes,
                        merged: false,
                        tombstone: false,
                    },
                );
                Ok(WriteRequest {
                    lba,
                    sectors: log.sectors,
                    content: WriteContent::Record {
                        key,
                        version,
                        bytes: log.stored_bytes,
                    },
                })
            }
            LogClass::Partial => self.append_partial(key, version, value_bytes, log.stored_bytes),
        }
    }

    fn append_partial(
        &mut self,
        key: u64,
        version: u64,
        raw_bytes: u32,
        class_bytes: u32,
    ) -> Result<WriteRequest, JournalFull> {
        // Seal the current merge unit when this log does not fit. A
        // repeated key replaces its fragment in place (the unit still
        // sits in the device's power-protected buffer), so hot keys do
        // not burn a fresh unit per update.
        let unit_sectors = self.layout.unit_sectors();
        let mapping_bytes = self.mapping_bytes();
        let needs_new = match &self.merge {
            None => true,
            Some(m) => {
                let existing = m
                    .fragments
                    .iter()
                    .find(|f| f.key == key)
                    .map(|f| f.bytes)
                    .unwrap_or(0);
                m.filled - existing + class_bytes > mapping_bytes
            }
        };
        if needs_new {
            if self.head_sectors + unit_sectors > self.layout.zone_sectors() {
                return Err(JournalFull);
            }
            self.merge = Some(MergeBuffer {
                sector_offset: self.head_sectors,
                fragments: Vec::new(),
                filled: 0,
            });
            self.head_sectors += unit_sectors;
        }
        let zone_base = self.zone_base();
        let merge = self.merge.as_mut().expect("merge buffer exists");
        if let Some(f) = merge.fragments.iter_mut().find(|f| f.key == key) {
            merge.filled = merge.filled - f.bytes + class_bytes;
            f.version = version;
            f.bytes = class_bytes;
        } else {
            merge.fragments.push(Fragment {
                key,
                version,
                bytes: class_bytes,
            });
            merge.filled += class_bytes;
        }
        let lba = zone_base + merge.sector_offset;
        let request = WriteRequest {
            lba,
            sectors: unit_sectors as u32,
            content: WriteContent::Merged(merge.fragments.clone()),
        };
        self.jmt.record(
            key,
            JmtEntry {
                journal_lba: lba,
                sectors: unit_sectors as u32,
                version,
                raw_bytes,
                stored_bytes: class_bytes,
                merged: true,
                tombstone: false,
            },
        );
        Ok(request)
    }

    /// Appends a deletion tombstone for `(key, version)`. Tombstones get
    /// their own journal unit (raw mode: one sector) so they never share
    /// space with live records.
    ///
    /// # Errors
    ///
    /// [`JournalFull`] when the zone has no room left.
    pub fn append_delete(&mut self, key: u64, version: u64) -> Result<WriteRequest, JournalFull> {
        let sectors = if self.options.sector_aligned {
            self.layout.unit_sectors() as u32
        } else {
            1
        };
        if self.head_sectors + sectors as u64 > self.layout.zone_sectors() {
            return Err(JournalFull);
        }
        let lba = self.zone_base() + self.head_sectors;
        self.head_sectors += sectors as u64;
        self.jmt.record(
            key,
            JmtEntry {
                journal_lba: lba,
                sectors,
                version,
                raw_bytes: 0,
                stored_bytes: sectors * SECTOR_BYTES,
                merged: false,
                tombstone: true,
            },
        );
        Ok(WriteRequest {
            lba,
            sectors,
            content: WriteContent::Tombstone { key, version },
        })
    }

    /// Begins a checkpoint: snapshots the JMT, retires the active zone,
    /// and switches journaling to the alternate zone so queries continue
    /// while the checkpoint runs. The entries vector is recycled from the
    /// last [`JournalManager::recycle_zone`] call, so steady-state
    /// checkpoints reuse one allocation.
    pub fn begin_checkpoint(&mut self) -> RetiringZone {
        let superseded = self.jmt.superseded();
        let raw_bytes = self.jmt.raw_bytes();
        let stored_bytes = self.jmt.stored_bytes();
        let mut entries = std::mem::take(&mut self.spare_entries);
        self.jmt.drain_into(&mut entries);
        let retiring = RetiringZone {
            zone: self.zone,
            base_lba: self.zone_base(),
            used_sectors: self.zone_used_sectors(),
            entries,
            superseded,
            raw_bytes,
            stored_bytes,
        };
        self.zone = (self.zone + 1) % JOURNAL_ZONES;
        self.head_sectors = 0;
        self.merge = None;
        retiring
    }

    /// Returns a finished [`RetiringZone`]'s entry buffer to the manager
    /// so the next [`JournalManager::begin_checkpoint`] can reuse it.
    pub fn recycle_zone(&mut self, zone: RetiringZone) {
        self.spare_entries = zone.entries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager(aligned: bool) -> JournalManager {
        let layout = Layout::new(100, 4096, 512, 1 << 12);
        JournalManager::new(layout, aligned, 0.7)
    }

    #[test]
    fn raw_append_pads_each_commit_to_a_sector() {
        let mut jm = manager(false);
        let r1 = jm.append(1, 1, 400).unwrap();
        let r2 = jm.append(2, 1, 400).unwrap();
        // 416-byte logs pad to one sector each; no sector sharing after a
        // commit.
        assert_eq!(r1.sectors, 1);
        assert_eq!(r2.lba, r1.lba + 1);
        assert_eq!(jm.zone_used_sectors(), 2);
        // Stored bytes reflect the padding.
        assert_eq!(jm.jmt().lookup(1).unwrap().stored_bytes, 512);
        // A 600-byte value spans two sectors (616 bytes + padding).
        let r3 = jm.append(3, 1, 600).unwrap();
        assert_eq!(r3.sectors, 2);
    }

    #[test]
    fn aligned_append_starts_each_full_log_on_a_sector() {
        let mut jm = manager(true);
        let r1 = jm.append(1, 1, 512).unwrap();
        let r2 = jm.append(2, 1, 512).unwrap();
        assert_eq!(r1.sectors, 1);
        assert_eq!(r2.lba, r1.lba + 1);
        assert!(!jm.jmt().lookup(1).unwrap().merged);
    }

    #[test]
    fn partial_logs_merge_into_one_sector() {
        let mut jm = manager(true);
        jm.append(1, 1, 100).unwrap(); // 128-class
        let r2 = jm.append(2, 1, 200).unwrap(); // 256-class
        match &r2.content {
            WriteContent::Merged(frags) => {
                assert_eq!(frags.len(), 2, "both partials share the sector");
            }
            other => panic!("expected merged content, got {other:?}"),
        }
        assert_eq!(jm.zone_used_sectors(), 1);
        assert!(jm.jmt().lookup(2).unwrap().merged);
    }

    #[test]
    fn merge_sector_seals_when_full() {
        let mut jm = manager(true);
        jm.append(1, 1, 384).unwrap(); // 384 class
        jm.append(2, 1, 200).unwrap(); // 256: 384+256 > 512 -> new sector
        assert_eq!(jm.zone_used_sectors(), 2);
        let e1 = *jm.jmt().lookup(1).unwrap();
        let e2 = *jm.jmt().lookup(2).unwrap();
        assert_ne!(e1.journal_lba, e2.journal_lba);
    }

    #[test]
    fn same_key_partial_update_replaces_in_buffered_sector() {
        let mut jm = manager(true);
        jm.append(1, 1, 100).unwrap();
        let r = jm.append(1, 2, 100).unwrap();
        assert_eq!(jm.jmt().lookup(1).unwrap().version, 2);
        assert_eq!(jm.jmt().superseded(), 1);
        // Still one sector: the buffered fragment was replaced in place.
        assert_eq!(jm.zone_used_sectors(), 1);
        match &r.content {
            WriteContent::Merged(frags) => {
                assert_eq!(frags.len(), 1);
                assert_eq!(frags[0].version, 2);
            }
            other => panic!("expected merged content, got {other:?}"),
        }
    }

    #[test]
    fn growing_partial_replacement_can_seal_sector() {
        let mut jm = manager(true);
        jm.append(1, 1, 100).unwrap(); // 128 class
        jm.append(2, 1, 300).unwrap(); // 384 class: 128+384 = 512 exactly
                                       // Key 1 grows to 384: 384+384 > 512 -> new sector.
        jm.append(1, 2, 300).unwrap();
        assert_eq!(jm.zone_used_sectors(), 2);
        assert_ne!(
            jm.jmt().lookup(1).unwrap().journal_lba,
            jm.jmt().lookup(2).unwrap().journal_lba
        );
    }

    #[test]
    fn large_value_compresses_under_alignment() {
        let mut jm = manager(true);
        let r = jm.append(1, 1, 4096).unwrap();
        // 4096 * 0.7 -> 6 sectors instead of 8.
        assert_eq!(r.sectors, 6);
    }

    #[test]
    fn checkpoint_swaps_zones_and_drains_jmt() {
        let mut jm = manager(true);
        jm.append(1, 1, 512).unwrap();
        jm.append(2, 1, 512).unwrap();
        let zone0_base = jm.append(3, 1, 512).unwrap().lba & !0xFFF;
        let retiring = jm.begin_checkpoint();
        assert_eq!(retiring.zone, 0);
        assert_eq!(retiring.entries.len(), 3);
        assert_eq!(retiring.used_sectors, 3);
        assert!(jm.jmt().is_empty());
        // New appends land in zone 1.
        let r = jm.append(4, 1, 512).unwrap();
        assert!(r.lba >= retiring.base_lba + jm.layout_zone_sectors_for_test());
        let _ = zone0_base;
        // Second checkpoint returns to zone 0.
        let retiring2 = jm.begin_checkpoint();
        assert_eq!(retiring2.zone, 1);
    }

    #[test]
    fn journal_full_raw_mode() {
        let layout = Layout::new(10, 512, 512, 4); // 4-sector zones
        let mut jm = JournalManager::new(layout, false, 1.0);
        jm.append(1, 1, 900).unwrap(); // 916 bytes -> 2 sectors
        jm.append(2, 1, 900).unwrap(); // 4 sectors total
        assert_eq!(jm.append(3, 1, 900), Err(JournalFull));
    }

    #[test]
    fn journal_full_aligned_mode() {
        let layout = Layout::new(10, 512, 512, 2);
        let mut jm = JournalManager::new(layout, true, 1.0);
        jm.append(1, 1, 512).unwrap();
        jm.append(2, 1, 512).unwrap();
        assert_eq!(jm.append(3, 1, 512), Err(JournalFull));
        // Partial also refused when no sector is left.
        assert_eq!(jm.append(4, 1, 100), Err(JournalFull));
    }

    impl JournalManager {
        fn layout_zone_sectors_for_test(&self) -> u64 {
            self.layout.zone_sectors()
        }
    }
}
