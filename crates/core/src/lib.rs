//! # Check-In: in-storage checkpointing for key-value stores
//!
//! A full reproduction of *"Check-In: In-Storage Checkpointing for
//! Key-Value Store System Leveraging Flash-Based SSDs"* (ISCA 2020):
//! a persistent key-value store whose storage engine cooperates with the
//! SSD's flash translation layer so that periodic checkpoints are created
//! **inside the device by remapping** journal logs to their data-area
//! homes, instead of reading them back to host memory and rewriting them.
//!
//! The crate assembles the whole simulated system:
//!
//! * [`KvEngine`] — query interface, key-value mapping, and the journaling
//!   layer, including **sector-aligned journaling** (the paper's
//!   Algorithm 2, [`align_log`]) and the double-buffered journal area;
//! * [`Strategy`] — the five evaluated configurations (Baseline, ISC-A,
//!   ISC-B, ISC-C, Check-In) and [`run_checkpoint`], which executes a
//!   checkpoint with any of them;
//! * [`KvSystem`] — a deterministic closed-loop simulation of N client
//!   threads over the engine and a fully modelled SSD
//!   ([`checkin_ssd::Ssd`] over [`checkin_ftl::Ftl`] over
//!   [`checkin_flash::FlashArray`]);
//! * [`RunReport`] — throughput, tail latency, checkpoint time, redundant
//!   writes, GC counts, lifetime score: every quantity in the paper's
//!   evaluation.
//!
//! # Quick start
//!
//! ```
//! use checkin_core::{KvSystem, SystemConfig, Strategy};
//!
//! let mut config = SystemConfig::for_strategy(Strategy::CheckIn);
//! config.total_queries = 2_000;      // scaled for the doctest
//! config.workload.record_count = 500;
//! config.threads = 8;
//!
//! let report = KvSystem::new(config)?.run()?;
//! println!("{report}");
//! assert!(report.throughput > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod config;
mod engine;
mod journal;
mod layout;
mod metrics;
mod parallel;
mod system;

pub use checkin_ftl::VictimPolicy;
pub use checkpoint::{run_checkpoint, CheckpointOutcome, SUPERBLOCK_KEY};
pub use config::{Strategy, SystemConfig};
pub use engine::{EngineError, KvEngine, ReadResult, RecoveryReport};
pub use journal::{
    align_log, align_log_to, raw_log_bytes, AlignedLog, Jmt, JmtEntry, JournalFull, JournalManager,
    JournalOptions, LogClass, RetiringZone, CLASS_STEP, LOG_HEADER_BYTES,
};
pub use layout::{Layout, JOURNAL_ZONES};
pub use metrics::{CheckpointPhases, FlashStats, LatencyStats, PhaseOps, RunReport, TimelinePoint};
pub use parallel::{default_jobs, run_configs};
pub use system::KvSystem;
