//! The storage engine: query interface, key-value mapping layer,
//! journaling layer (Figure 5's Check-In engine, parameterised so the same
//! engine also behaves as the conventional baseline).

use checkin_flash::{Fragment, OobKind};
use checkin_sim::{CounterSet, SimTime, TraceEvent, TraceLayer, Tracer};
use checkin_ssd::{ReadRequest, Ssd, SsdError, WriteContent, WriteRequest, SECTOR_BYTES};

use crate::checkpoint::{run_checkpoint, CheckpointOutcome};
use crate::config::Strategy;
use crate::journal::{JournalFull, JournalManager, RetiringZone};
use crate::layout::{Layout, JOURNAL_ZONES};

/// Engine-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The active journal zone is full: checkpoint, then retry the update.
    JournalFull,
    /// Read of a key that was never loaded.
    UnknownKey(u64),
    /// Update with an empty or oversized value.
    InvalidValue(u32),
    /// Device failure.
    Ssd(SsdError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::JournalFull => write!(f, "journal full; checkpoint required"),
            EngineError::UnknownKey(k) => write!(f, "unknown key {k}"),
            EngineError::InvalidValue(n) => write!(f, "invalid value size {n} bytes"),
            EngineError::Ssd(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Ssd(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SsdError> for EngineError {
    fn from(e: SsdError) -> Self {
        EngineError::Ssd(e)
    }
}

impl From<JournalFull> for EngineError {
    fn from(_: JournalFull) -> Self {
        EngineError::JournalFull
    }
}

/// Result of a point read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadResult {
    /// Version observed (engine-verified against its key map).
    pub version: u64,
    /// Whether the read was served from the journal area (JMT hit).
    pub from_journal: bool,
    /// Completion instant.
    pub finish: SimTime,
}

/// The key-value storage engine.
///
/// # Examples
///
/// ```
/// use checkin_core::{KvEngine, Strategy, Layout};
/// use checkin_flash::{FlashArray, FlashGeometry, FlashTiming};
/// use checkin_ftl::{Ftl, FtlConfig};
/// use checkin_ssd::{Ssd, SsdTiming};
/// use checkin_sim::SimTime;
///
/// let flash = FlashArray::new(FlashGeometry::small(), FlashTiming::mlc());
/// let ftl = Ftl::new(flash, FtlConfig { unit_bytes: 512, write_points: 2, ..FtlConfig::default() }).unwrap();
/// let mut ssd = Ssd::new(ftl, SsdTiming::paper_default());
///
/// let mut engine = KvEngine::new(Strategy::CheckIn, Layout::new(100, 4096, 512, 1 << 12), 0.7);
/// let t = engine.load(&mut ssd, &[(1, 400), (2, 900)], SimTime::ZERO)?;
/// let t = engine.update(&mut ssd, 1, 400, t)?;
/// let read = engine.get(&mut ssd, 1, t)?;
/// assert_eq!(read.version, 2); // load wrote v1, update wrote v2
/// assert!(read.from_journal);
/// # Ok::<(), checkin_core::EngineError>(())
/// ```
#[derive(Debug)]
pub struct KvEngine {
    strategy: Strategy,
    layout: Layout,
    journal: JournalManager,
    /// Key-value mapping layer, indexed by key: keys are dense integers
    /// below the layout's record count, so a flat array replaces the
    /// hash maps the engine used to keep (version 0 = never loaded).
    keys: Vec<KeyState>,
    /// Keys with a non-zero version (what `loaded_keys` reports).
    loaded: usize,
    checkpoint_seq: u64,
    counters: CounterSet,
    tracer: Tracer,
    /// Reused fragment buffer so steady-state reads never allocate.
    read_scratch: Vec<Fragment>,
}

/// Committed per-key engine state (one flat-array slot).
#[derive(Debug, Clone, Copy, Default)]
struct KeyState {
    /// Latest committed version; 0 = the key was never loaded.
    version: u64,
    /// Current value size in bytes (0 after a deletion).
    bytes: u32,
    /// True when the latest committed operation is a deletion.
    deleted: bool,
}

impl KvEngine {
    /// Creates an engine for `strategy` over `layout`.
    pub fn new(strategy: Strategy, layout: Layout, compression_ratio: f64) -> Self {
        let options = if strategy.sector_aligned_journaling() {
            crate::journal::JournalOptions::check_in(compression_ratio)
        } else {
            crate::journal::JournalOptions::conventional()
        };
        Self::with_journal_options(strategy, layout, options)
    }

    /// Creates an engine with explicit journaling options (ablations:
    /// disable compression or partial merging independently).
    pub fn with_journal_options(
        strategy: Strategy,
        layout: Layout,
        options: crate::journal::JournalOptions,
    ) -> Self {
        KvEngine {
            strategy,
            layout,
            journal: JournalManager::with_options(layout, options),
            keys: Vec::with_capacity(layout.record_count() as usize),
            loaded: 0,
            checkpoint_seq: 0,
            counters: CounterSet::new(),
            tracer: Tracer::disabled(),
            read_scratch: Vec::new(),
        }
    }

    /// Installs a trace sink for engine- and journal-level events
    /// (queries, journal appends, checkpoint spans).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// State of `key` when it has ever been committed.
    fn state(&self, key: u64) -> Option<KeyState> {
        self.keys
            .get(key as usize)
            .copied()
            .filter(|s| s.version > 0)
    }

    /// Commits new state for `key`, growing the array on first touch.
    fn commit(&mut self, key: u64, version: u64, bytes: u32, deleted: bool) {
        let idx = key as usize;
        if idx >= self.keys.len() {
            self.keys.resize(idx + 1, KeyState::default());
        }
        let Some(slot) = self.keys.get_mut(idx) else {
            return; // unreachable: resized above
        };
        if slot.version == 0 {
            self.loaded += 1;
        }
        *slot = KeyState {
            version,
            bytes,
            deleted,
        };
    }

    /// The engine's address layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The strategy in effect.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Engine counters (`engine.*`).
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// The journal manager (JMT inspection).
    pub fn journal(&self) -> &JournalManager {
        &self.journal
    }

    /// Committed version of `key`, if loaded.
    pub fn version_of(&self, key: u64) -> Option<u64> {
        self.state(key).map(|s| s.version)
    }

    /// Current value size of `key` in bytes (`None` for unknown or
    /// deleted keys).
    pub fn size_of(&self, key: u64) -> Option<u32> {
        self.state(key).filter(|s| !s.deleted).map(|s| s.bytes)
    }

    /// Number of loaded keys.
    pub fn loaded_keys(&self) -> usize {
        self.loaded
    }

    /// Mapping units of journal space used since the last checkpoint
    /// (checkpoint trigger input).
    pub fn journal_used_units(&self) -> u64 {
        self.journal.zone_used_units()
    }

    /// Bulk-loads `(key, value_bytes)` records directly into the data
    /// area (version 1 each), then flushes.
    ///
    /// # Errors
    ///
    /// Propagates device failures.
    pub fn load(
        &mut self,
        ssd: &mut Ssd,
        records: &[(u64, u32)],
        at: SimTime,
    ) -> Result<SimTime, EngineError> {
        let mut t = at;
        for &(key, bytes) in records {
            let sectors = bytes.div_ceil(SECTOR_BYTES).max(1);
            let req = WriteRequest {
                lba: self.layout.home_lba(key),
                sectors,
                content: WriteContent::Record {
                    key,
                    version: 1,
                    bytes,
                },
            };
            t = ssd.write(&req, OobKind::Data, t)?;
            self.commit(key, 1, bytes, false);
            self.counters.incr("engine.loads");
        }
        Ok(ssd.flush(t)?)
    }

    /// Point read: the JMT first (latest journal copy), then the data
    /// area.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownKey`] when the key was never loaded.
    pub fn get(&mut self, ssd: &mut Ssd, key: u64, at: SimTime) -> Result<ReadResult, EngineError> {
        self.counters.incr("engine.reads");
        let expected = match self.state(key) {
            Some(s) if !s.deleted => s.version,
            _ => return Err(EngineError::UnknownKey(key)),
        };
        let (lba, sectors, from_journal) = match self.journal.jmt().lookup(key) {
            Some(e) => (e.journal_lba, e.sectors, true),
            None => (
                self.layout.home_lba(key),
                self.layout.slot_sectors() as u32,
                false,
            ),
        };
        self.read_scratch.clear();
        let finish = ssd.read_into(
            &ReadRequest {
                lba,
                sectors,
                key: Some(key),
            },
            at,
            &mut self.read_scratch,
        )?;
        let version = self
            .read_scratch
            .iter()
            .map(|f| f.version)
            .max()
            .unwrap_or(0);
        debug_assert_eq!(
            version, expected,
            "read of key {key} returned stale version (strategy={:?}, from_journal={from_journal}, lba={lba}, sectors={sectors}, frags={:?})",
            self.strategy, self.read_scratch
        );
        self.tracer.emit(|| {
            TraceEvent::new(finish, TraceLayer::Engine, "get")
                .with("key", key)
                .with("from_journal", u64::from(from_journal))
                .with("latency_ns", finish.duration_since(at).as_nanos())
        });
        Ok(ReadResult {
            version,
            from_journal,
            finish,
        })
    }

    /// Update: journal the new version (write-ahead), then acknowledge.
    ///
    /// # Errors
    ///
    /// [`EngineError::JournalFull`] when the active zone cannot hold the
    /// log — checkpoint and retry. [`EngineError::UnknownKey`] for keys
    /// never loaded.
    pub fn update(
        &mut self,
        ssd: &mut Ssd,
        key: u64,
        value_bytes: u32,
        at: SimTime,
    ) -> Result<SimTime, EngineError> {
        let current = match self.state(key) {
            Some(s) if !s.deleted => s.version,
            _ => return Err(EngineError::UnknownKey(key)),
        };
        let max_bytes = (self.layout.slot_sectors() * SECTOR_BYTES as u64) as u32;
        if value_bytes == 0 || value_bytes > max_bytes {
            return Err(EngineError::InvalidValue(value_bytes));
        }
        let version = current + 1;
        let req = self.journal.append(key, version, value_bytes)?;
        let sectors = req.sectors;
        let t = ssd.write(&req, OobKind::Journal, at)?;
        self.commit(key, version, value_bytes, false);
        self.counters.incr("engine.updates");
        self.counters.add("engine.update_bytes", value_bytes as u64);
        // The journal manager has no clock, so the engine emits the
        // journal-layer event on its behalf at the commit instant.
        self.tracer.emit(|| {
            TraceEvent::new(t, TraceLayer::Journal, "append")
                .with("key", key)
                .with("version", version)
                .with("sectors", u64::from(sectors))
        });
        self.tracer.emit(|| {
            TraceEvent::new(t, TraceLayer::Engine, "update")
                .with("key", key)
                .with("bytes", u64::from(value_bytes))
                .with("latency_ns", t.duration_since(at).as_nanos())
        });
        Ok(t)
    }

    /// Deletes `key`: journals a tombstone (write-ahead) and acknowledges.
    /// The key's home extent is trimmed at the next checkpoint; until
    /// then reads return [`EngineError::UnknownKey`] from the key map.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownKey`] for unknown or already-deleted keys;
    /// [`EngineError::JournalFull`] when a checkpoint is required first.
    pub fn delete(&mut self, ssd: &mut Ssd, key: u64, at: SimTime) -> Result<SimTime, EngineError> {
        let current = match self.state(key) {
            Some(s) if !s.deleted => s.version,
            _ => return Err(EngineError::UnknownKey(key)),
        };
        let version = current + 1;
        let req = self.journal.append_delete(key, version)?;
        let t = ssd.write(&req, OobKind::Journal, at)?;
        self.commit(key, version, 0, true);
        self.counters.incr("engine.deletes");
        Ok(t)
    }

    /// Inserts (or resurrects) `key` with a fresh value. Versioning stays
    /// monotonic across delete/insert cycles.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidValue`] for empty/oversized values;
    /// [`EngineError::JournalFull`] when a checkpoint is required first.
    /// Keys must lie inside the loaded keyspace (`layout.record_count`).
    pub fn insert(
        &mut self,
        ssd: &mut Ssd,
        key: u64,
        value_bytes: u32,
        at: SimTime,
    ) -> Result<SimTime, EngineError> {
        if key >= self.layout.record_count() {
            return Err(EngineError::UnknownKey(key));
        }
        let max_bytes = (self.layout.slot_sectors() * SECTOR_BYTES as u64) as u32;
        if value_bytes == 0 || value_bytes > max_bytes {
            return Err(EngineError::InvalidValue(value_bytes));
        }
        let version = self.state(key).map_or(0, |s| s.version) + 1;
        let req = self.journal.append(key, version, value_bytes)?;
        let t = ssd.write(&req, OobKind::Journal, at)?;
        self.commit(key, version, value_bytes, false);
        self.counters.incr("engine.inserts");
        Ok(t)
    }

    /// Runs one checkpoint: retires the active journal zone and moves its
    /// live entries home using the configured strategy.
    ///
    /// # Errors
    ///
    /// Propagates device failures.
    pub fn checkpoint(
        &mut self,
        ssd: &mut Ssd,
        at: SimTime,
    ) -> Result<CheckpointOutcome, EngineError> {
        self.checkpoint_seq += 1;
        let zone: RetiringZone = self.journal.begin_checkpoint();
        self.counters.add("engine.superseded_logs", zone.superseded);
        self.counters
            .add("engine.journal_raw_bytes", zone.raw_bytes);
        self.counters
            .add("engine.journal_stored_bytes", zone.stored_bytes);
        self.tracer.emit(|| {
            TraceEvent::new(at, TraceLayer::Journal, "retire_zone")
                .with("entries", zone.entries.len() as u64)
                .with("used_sectors", zone.used_sectors)
                .with("superseded", zone.superseded)
        });
        let outcome = run_checkpoint(
            ssd,
            self.strategy,
            &self.layout,
            &zone,
            self.checkpoint_seq,
            at,
        )?;
        self.journal.recycle_zone(zone);
        self.counters.incr("engine.checkpoints");
        self.tracer.emit(|| {
            TraceEvent::new(outcome.finish, TraceLayer::Engine, "checkpoint")
                .with("seq", self.checkpoint_seq)
                .with("remapped", outcome.remapped)
                .with("copied", outcome.copied)
                .with("duration_ns", outcome.finish.duration_since(at).as_nanos())
        });
        Ok(outcome)
    }

    /// Crash recovery: rebuilds engine state from the device alone —
    /// data-area homes (last checkpoint) plus a scan of both journal zones
    /// (logs since then), then re-checkpoints the journal tail so the data
    /// area is current, and trims the journal (§III-G).
    ///
    /// Returns the recovered engine and the completion time.
    ///
    /// # Errors
    ///
    /// Propagates device failures.
    pub fn recover(
        strategy: Strategy,
        layout: Layout,
        compression_ratio: f64,
        ssd: &mut Ssd,
        record_count: u64,
        at: SimTime,
    ) -> Result<(Self, SimTime), EngineError> {
        let (engine, report) =
            Self::recover_with_report(strategy, layout, compression_ratio, ssd, record_count, at)?;
        Ok((engine, report.finish))
    }

    /// [`KvEngine::recover`] with full accounting of what the recovery did.
    ///
    /// # Errors
    ///
    /// Propagates device failures.
    pub fn recover_with_report(
        strategy: Strategy,
        layout: Layout,
        compression_ratio: f64,
        ssd: &mut Ssd,
        record_count: u64,
        at: SimTime,
    ) -> Result<(Self, RecoveryReport), EngineError> {
        let reads_before = ssd.counters().get("ssd.cmd_read");
        let mut engine = KvEngine::new(strategy, layout, compression_ratio);
        let mut t = at;

        // 1. Restore the last checkpoint: read every home slot.
        for key in 0..record_count {
            let (frags, finish) = ssd.read(
                &ReadRequest {
                    lba: layout.home_lba(key),
                    sectors: layout.slot_sectors() as u32,
                    key: Some(key),
                },
                t,
            )?;
            t = finish;
            if let Some(v) = frags.iter().map(|f| f.version).max() {
                let bytes: u32 = frags.iter().map(|f| f.bytes).sum();
                engine.commit(key, v, bytes, false);
            }
        }

        // 2. Replay journal logs written after the checkpoint: scan both
        //    zones unit by unit until a run of unwritten units. The
        //    newest-version table is key-indexed, so step 3 replays in
        //    ascending key order (deterministic device state).
        let us = layout.unit_sectors();
        let mut newest: Vec<(u64, u32, bool)> = vec![(0, 0, false); record_count as usize];
        for zone in 0..JOURNAL_ZONES {
            let base = layout.journal_base(zone);
            let mut empty_run = 0u32;
            let mut cursor = 0u64;
            while cursor < layout.zone_sectors() && empty_run < 16 {
                let (frags, finish) = ssd.read(
                    &ReadRequest {
                        lba: base + cursor,
                        sectors: us as u32,
                        key: None,
                    },
                    t,
                )?;
                t = finish;
                if frags.is_empty() {
                    empty_run += 1;
                } else {
                    empty_run = 0;
                    for f in frags {
                        if f.key == u64::MAX || f.key >= record_count {
                            continue; // device/engine metadata
                        }
                        let Some(e) = newest.get_mut(f.key as usize) else {
                            continue; // unreachable: f.key < record_count checked above
                        };
                        if f.version > e.0 {
                            // bytes == 0 marks a deletion tombstone.
                            *e = (f.version, f.bytes, f.bytes == 0);
                        } else if f.version == e.0 && !e.2 {
                            e.1 += f.bytes; // another unit of the same log
                        }
                    }
                }
                cursor += us;
            }
        }

        // 3. Re-checkpoint the journal tail: write newer versions home
        //    (or apply deletion tombstones by trimming the home extent).
        let mut replayed = 0u64;
        for (key, &(version, bytes, tombstone)) in newest.iter().enumerate() {
            let key = key as u64;
            let committed = engine.version_of(key).unwrap_or(0);
            if version > committed {
                if tombstone {
                    t = ssd.deallocate(layout.home_lba(key), layout.slot_sectors() as u32, t);
                    engine.commit(key, version, 0, true);
                } else {
                    let bytes = bytes.max(1);
                    let req = WriteRequest {
                        lba: layout.home_lba(key),
                        sectors: bytes.div_ceil(SECTOR_BYTES).max(1),
                        content: WriteContent::Record {
                            key,
                            version,
                            bytes,
                        },
                    };
                    t = ssd.write(&req, OobKind::Data, t)?;
                    engine.commit(key, version, bytes, false);
                }
                replayed += 1;
            }
        }

        // 4. Trim both journal zones: everything is checkpointed now.
        for zone in 0..JOURNAL_ZONES {
            t = ssd.deallocate(layout.journal_base(zone), layout.zone_sectors() as u32, t);
        }
        engine.counters.incr("engine.recoveries");
        let report = RecoveryReport {
            finish: t,
            duration: t.duration_since(at),
            keys_recovered: engine.loaded as u64,
            journal_entries_replayed: replayed,
            device_reads: ssd.counters().get("ssd.cmd_read") - reads_before,
        };
        Ok((engine, report))
    }
}

/// Accounting of one crash recovery (§III-G).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// When recovery completed.
    pub finish: SimTime,
    /// Simulated time the recovery took.
    pub duration: checkin_sim::SimDuration,
    /// Keys restored (checkpoint + journal tail).
    pub keys_recovered: u64,
    /// Keys whose journal version was newer than the checkpointed one.
    pub journal_entries_replayed: u64,
    /// Device read commands issued by the scan.
    pub device_reads: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use checkin_flash::{FlashArray, FlashGeometry, FlashTiming};
    use checkin_ftl::{Ftl, FtlConfig};
    use checkin_ssd::SsdTiming;

    fn setup(strategy: Strategy) -> (Ssd, KvEngine) {
        let unit = strategy.default_unit_bytes();
        let flash = FlashArray::new(FlashGeometry::small(), FlashTiming::mlc());
        let ftl = Ftl::new(
            flash,
            FtlConfig {
                unit_bytes: unit,
                write_points: 2,
                gc_threshold_blocks: 4,
                gc_soft_threshold_blocks: 8,
                ..FtlConfig::default()
            },
        )
        .unwrap();
        let ssd = Ssd::new(ftl, SsdTiming::paper_default());
        let layout = Layout::new(64, 4096, unit, 1 << 11);
        (ssd, KvEngine::new(strategy, layout, 0.7))
    }

    #[test]
    fn load_then_get_serves_from_home() {
        let (mut ssd, mut engine) = setup(Strategy::CheckIn);
        let t = engine
            .load(&mut ssd, &[(0, 400), (1, 900)], SimTime::ZERO)
            .unwrap();
        let r = engine.get(&mut ssd, 0, t).unwrap();
        assert_eq!(r.version, 1);
        assert!(!r.from_journal);
    }

    #[test]
    fn update_serves_from_journal_until_checkpoint() {
        let (mut ssd, mut engine) = setup(Strategy::CheckIn);
        let t = engine.load(&mut ssd, &[(0, 400)], SimTime::ZERO).unwrap();
        let t = engine.update(&mut ssd, 0, 400, t).unwrap();
        let r = engine.get(&mut ssd, 0, t).unwrap();
        assert_eq!(r.version, 2);
        assert!(r.from_journal);
        let out = engine.checkpoint(&mut ssd, r.finish).unwrap();
        let r = engine.get(&mut ssd, 0, out.finish).unwrap();
        assert_eq!(r.version, 2);
        assert!(!r.from_journal, "after checkpoint, home is current");
    }

    #[test]
    fn unknown_key_errors() {
        let (mut ssd, mut engine) = setup(Strategy::Baseline);
        assert_eq!(
            engine.get(&mut ssd, 7, SimTime::ZERO),
            Err(EngineError::UnknownKey(7))
        );
        assert_eq!(
            engine.update(&mut ssd, 7, 100, SimTime::ZERO),
            Err(EngineError::UnknownKey(7))
        );
    }

    #[test]
    fn journal_full_surfaces_and_checkpoint_recovers() {
        let (mut ssd, mut engine) = setup(Strategy::Baseline);
        let mut t = engine.load(&mut ssd, &[(0, 4096)], SimTime::ZERO).unwrap();
        // Fill the zone with large updates until it refuses.
        let mut filled = false;
        for _ in 0..2000 {
            match engine.update(&mut ssd, 0, 4096, t) {
                Ok(finish) => t = finish,
                Err(EngineError::JournalFull) => {
                    filled = true;
                    break;
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert!(filled, "zone should fill");
        let out = engine.checkpoint(&mut ssd, t).unwrap();
        // Retry succeeds in the fresh zone.
        engine.update(&mut ssd, 0, 4096, out.finish).unwrap();
    }

    #[test]
    fn every_strategy_roundtrips_updates_through_checkpoint() {
        for strategy in Strategy::all() {
            let (mut ssd, mut engine) = setup(strategy);
            let records: Vec<(u64, u32)> =
                (0..32).map(|k| (k, 300 + (k as u32 * 37) % 3000)).collect();
            let mut t = engine.load(&mut ssd, &records, SimTime::ZERO).unwrap();
            for round in 0..3 {
                for k in 0..32u64 {
                    let size = 200 + ((k + round) as u32 * 53) % 2000;
                    t = engine.update(&mut ssd, k, size, t).unwrap();
                }
                let out = engine.checkpoint(&mut ssd, t).unwrap();
                t = out.finish;
            }
            for k in 0..32u64 {
                let r = engine.get(&mut ssd, k, t).unwrap();
                assert_eq!(r.version, 4, "{strategy} key {k}");
                t = r.finish;
            }
            ssd.ftl().check_invariants().unwrap();
        }
    }

    #[test]
    fn recovery_restores_checkpoint_plus_journal_tail() {
        let (mut ssd, mut engine) = setup(Strategy::CheckIn);
        let records: Vec<(u64, u32)> = (0..16).map(|k| (k, 400)).collect();
        let mut t = engine.load(&mut ssd, &records, SimTime::ZERO).unwrap();
        // Two updates + checkpoint, then one more update left in journal.
        for k in 0..16u64 {
            t = engine.update(&mut ssd, k, 400, t).unwrap();
        }
        let out = engine.checkpoint(&mut ssd, t).unwrap();
        t = out.finish;
        for k in 0..8u64 {
            t = engine.update(&mut ssd, k, 400, t).unwrap();
        }
        // Crash: host state dropped; device (capacitor-backed) survives.
        drop(engine);
        let layout = Layout::new(64, 4096, 512, 1 << 11);
        let (recovered, t) =
            KvEngine::recover(Strategy::CheckIn, layout, 0.7, &mut ssd, 16, t).unwrap();
        for k in 0..16u64 {
            let want = if k < 8 { 3 } else { 2 };
            assert_eq!(recovered.version_of(k), Some(want), "key {k}");
        }
        // Recovered engine serves reads with the right versions.
        let mut engine = recovered;
        let r = engine.get(&mut ssd, 3, t).unwrap();
        assert_eq!(r.version, 3);
    }

    #[test]
    fn invalid_value_sizes_rejected() {
        let (mut ssd, mut engine) = setup(Strategy::CheckIn);
        let t = engine.load(&mut ssd, &[(0, 400)], SimTime::ZERO).unwrap();
        assert_eq!(
            engine.update(&mut ssd, 0, 0, t),
            Err(EngineError::InvalidValue(0))
        );
        let too_big = (engine.layout().slot_sectors() * 512 + 1) as u32;
        assert_eq!(
            engine.update(&mut ssd, 0, too_big, t),
            Err(EngineError::InvalidValue(too_big))
        );
        // Version unchanged after rejections.
        assert_eq!(engine.version_of(0), Some(1));
    }

    #[test]
    fn recovery_report_accounts_for_work() {
        let (mut ssd, mut engine) = setup(Strategy::CheckIn);
        let records: Vec<(u64, u32)> = (0..16).map(|k| (k, 400)).collect();
        let mut t = engine.load(&mut ssd, &records, SimTime::ZERO).unwrap();
        for k in 0..16u64 {
            t = engine.update(&mut ssd, k, 400, t).unwrap();
        }
        t = engine.checkpoint(&mut ssd, t).unwrap().finish;
        for k in 0..5u64 {
            t = engine.update(&mut ssd, k, 400, t).unwrap();
        }
        drop(engine);
        let layout = Layout::new(64, 4096, 512, 1 << 11);
        let (_, report) =
            KvEngine::recover_with_report(Strategy::CheckIn, layout, 0.7, &mut ssd, 16, t).unwrap();
        assert_eq!(report.keys_recovered, 16);
        assert_eq!(report.journal_entries_replayed, 5);
        assert!(report.device_reads >= 16, "scan reads homes + journal");
        assert!(report.duration > checkin_sim::SimDuration::ZERO);
    }

    #[test]
    fn delete_hides_key_until_insert_resurrects_it() {
        let (mut ssd, mut engine) = setup(Strategy::CheckIn);
        let t = engine.load(&mut ssd, &[(3, 400)], SimTime::ZERO).unwrap();
        let t = engine.update(&mut ssd, 3, 500, t).unwrap();
        let t = engine.delete(&mut ssd, 3, t).unwrap();
        assert_eq!(engine.get(&mut ssd, 3, t), Err(EngineError::UnknownKey(3)));
        assert_eq!(
            engine.update(&mut ssd, 3, 100, t),
            Err(EngineError::UnknownKey(3)),
            "updates need insert after a delete"
        );
        assert_eq!(
            engine.delete(&mut ssd, 3, t),
            Err(EngineError::UnknownKey(3))
        );
        // Resurrection continues the version chain.
        assert_eq!(engine.size_of(3), None, "deleted key has no size");
        let t = engine.insert(&mut ssd, 3, 256, t).unwrap();
        let r = engine.get(&mut ssd, 3, t).unwrap();
        assert_eq!(r.version, 4, "load=1, update=2, delete=3, insert=4");
        assert_eq!(engine.size_of(3), Some(256));
    }

    #[test]
    fn checkpointed_delete_trims_the_home_extent() {
        for strategy in [Strategy::Baseline, Strategy::IscB, Strategy::CheckIn] {
            let (mut ssd, mut engine) = setup(strategy);
            let t = engine
                .load(&mut ssd, &[(0, 400), (1, 400)], SimTime::ZERO)
                .unwrap();
            let t = engine.delete(&mut ssd, 0, t).unwrap();
            let out = engine.checkpoint(&mut ssd, t).unwrap();
            assert_eq!(out.deleted, 1, "{strategy}");
            // Device-level: home units of key 0 are unmapped.
            let home = engine.layout().home_lba(0);
            let (frags, t) = ssd
                .read(
                    &checkin_ssd::ReadRequest {
                        lba: home,
                        sectors: engine.layout().slot_sectors() as u32,
                        key: None,
                    },
                    out.finish,
                )
                .unwrap();
            assert!(frags.is_empty(), "{strategy}: home must be trimmed");
            // The neighbour survives.
            let r = engine.get(&mut ssd, 1, t).unwrap();
            assert_eq!(r.version, 1);
            ssd.ftl().check_invariants().unwrap();
        }
    }

    #[test]
    fn recovery_replays_journal_tombstones() {
        let (mut ssd, mut engine) = setup(Strategy::CheckIn);
        let records: Vec<(u64, u32)> = (0..8).map(|k| (k, 400)).collect();
        let mut t = engine.load(&mut ssd, &records, SimTime::ZERO).unwrap();
        t = engine.checkpoint(&mut ssd, t).unwrap().finish;
        // Delete key 2 after the checkpoint; crash before the next one.
        t = engine.delete(&mut ssd, 2, t).unwrap();
        t = engine.update(&mut ssd, 5, 300, t).unwrap();
        drop(engine);
        let layout = Layout::new(64, 4096, 512, 1 << 11);
        let (mut recovered, t) =
            KvEngine::recover(Strategy::CheckIn, layout, 0.7, &mut ssd, 8, t).unwrap();
        assert_eq!(
            recovered.get(&mut ssd, 2, t),
            Err(EngineError::UnknownKey(2)),
            "tombstone must survive the crash"
        );
        let r = recovered.get(&mut ssd, 5, t).unwrap();
        assert_eq!(r.version, 2);
        // Resurrection after recovery continues versioning past the
        // tombstone.
        let t = recovered.insert(&mut ssd, 2, 128, r.finish).unwrap();
        let r = recovered.get(&mut ssd, 2, t).unwrap();
        assert_eq!(r.version, 3, "load=1, delete=2, insert=3");
    }

    #[test]
    fn insert_validates_keyspace_and_size() {
        let (mut ssd, mut engine) = setup(Strategy::CheckIn);
        let t = engine.load(&mut ssd, &[(0, 400)], SimTime::ZERO).unwrap();
        assert_eq!(
            engine.insert(&mut ssd, 10_000, 100, t),
            Err(EngineError::UnknownKey(10_000))
        );
        assert_eq!(
            engine.insert(&mut ssd, 5, 0, t),
            Err(EngineError::InvalidValue(0))
        );
        // Fresh key inside the keyspace is fine.
        let t = engine.insert(&mut ssd, 5, 100, t).unwrap();
        assert_eq!(engine.get(&mut ssd, 5, t).unwrap().version, 1);
    }

    #[test]
    fn rmw_pattern_via_get_then_update() {
        let (mut ssd, mut engine) = setup(Strategy::IscB);
        let t = engine.load(&mut ssd, &[(5, 512)], SimTime::ZERO).unwrap();
        let r = engine.get(&mut ssd, 5, t).unwrap();
        let t = engine.update(&mut ssd, 5, 512, r.finish).unwrap();
        assert_eq!(engine.version_of(5), Some(2));
        assert!(t > r.finish);
    }
}
