//! Run reports: every quantity the paper's tables and figures need.

use checkin_sim::{LatencyRecorder, SimDuration};

use crate::config::Strategy;

/// Summary of a latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyStats {
    /// Samples.
    pub count: u64,
    /// Mean.
    pub mean: SimDuration,
    /// Median.
    pub p50: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
    /// 99.9th percentile (the paper's headline tail metric).
    pub p999: SimDuration,
    /// 99.99th percentile.
    pub p9999: SimDuration,
    /// Maximum.
    pub max: SimDuration,
}

impl LatencyStats {
    /// Summarises a recorder.
    pub fn from_recorder(r: &LatencyRecorder) -> Self {
        LatencyStats {
            count: r.count(),
            mean: r.mean(),
            p50: r.quantile(0.5),
            p99: r.quantile(0.99),
            p999: r.quantile(0.999),
            p9999: r.quantile(0.9999),
            max: r.max(),
        }
    }
}

impl std::fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p99={} p99.9={} p99.99={} max={}",
            self.count, self.mean, self.p50, self.p99, self.p999, self.p9999, self.max
        )
    }
}

/// Flash-level accounting for the measured phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlashStats {
    /// Page reads.
    pub reads: u64,
    /// Page programs.
    pub programs: u64,
    /// Block erases.
    pub erases: u64,
    /// GC invocations.
    pub gc_invocations: u64,
    /// Units relocated by GC.
    pub gc_units_moved: u64,
    /// Invalid (stale) units generated.
    pub invalid_units: u64,
    /// Transient media failures injected by the fault plan.
    pub transient_faults: u64,
    /// Firmware retries spent absorbing transient failures.
    pub media_retries: u64,
    /// Blocks that developed a permanent (grown) defect.
    pub grown_bad_blocks: u64,
    /// Blocks retired (taken out of service) by the FTL.
    pub blocks_retired: u64,
    /// Reads that exhausted their per-class media retry budget.
    pub retry_exhausted_read: u64,
    /// Programs that exhausted their per-class media retry budget.
    pub retry_exhausted_program: u64,
    /// Erases that exhausted their per-class media retry budget.
    pub retry_exhausted_erase: u64,
    /// Corrupt data units detected by checksum verification (foreground
    /// reads, GC relocation, scrubbing, recovery scans).
    pub integrity_detected: u64,
    /// Detected-corrupt units whose data was healed by a fresh host
    /// write before the damage could spread.
    pub integrity_corrected: u64,
    /// Detected-corrupt units quarantined (reads fail typed, never
    /// serve rotted bytes).
    pub integrity_quarantined: u64,
    /// Referenced corrupt units destroyed (GC / block retirement) with
    /// no surviving copy — the affected lpns are poisoned.
    pub integrity_unrecoverable: u64,
    /// Pages patrol-read by the background scrubber.
    pub scrub_pages: u64,
}

impl FlashStats {
    /// Total flash operations.
    pub fn total_ops(&self) -> u64 {
        self.reads + self.programs + self.erases
    }
}

/// One bucket of the latency-over-time series (the paper's Fig. 9 view).
///
/// The series is **contiguous**: buckets cover the measured phase from
/// its start through the bucket containing the last completion, with no
/// gaps. A bucket in which no query completed has `count == 0` and
/// `worst == 0` — that is what a checkpoint- or GC-induced stall looks
/// like (a flat-line, not a missing sample).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelinePoint {
    /// Bucket start, relative to the measured phase.
    pub at: SimDuration,
    /// Worst query latency completed in the bucket (zero when none).
    pub worst: SimDuration,
    /// Queries completed in the bucket.
    pub count: u64,
}

/// Flash operations attributed to one checkpoint phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseOps {
    /// Page reads.
    pub reads: u64,
    /// Page programs.
    pub programs: u64,
    /// Block erases.
    pub erases: u64,
}

impl PhaseOps {
    /// Total flash operations in this phase.
    pub fn total(&self) -> u64 {
        self.reads + self.programs + self.erases
    }

    /// Adds another phase's counts into this one.
    pub fn accumulate(&mut self, other: &PhaseOps) {
        self.reads += other.reads;
        self.programs += other.programs;
        self.erases += other.erases;
    }
}

/// Per-phase breakdown of checkpoint work, following Algorithm 1's
/// steps: drain (tombstone walk and entry build), remap walk, copy
/// fallback, metadata persistence, journal trim, and any garbage
/// collection the checkpoint itself triggered.
///
/// Flash-op attribution is exact: the flash array counts every
/// program/read/erase under the firmware phase active when it was
/// issued, at the same site as the aggregate counter, so the per-phase
/// counts here always sum to the aggregate checkpoint totals
/// ([`RunReport::checkpoint_flash_programs`] /
/// [`RunReport::checkpoint_flash_reads`]). Durations are wall-clock
/// spans of each stage on the simulated clock; stages overlap device
/// resources, so they are a breakdown, not an exact partition of the
/// checkpoint's duration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointPhases {
    /// Time draining the retiring zone: applying deletion tombstones
    /// and building the entry batch (no data movement yet).
    pub drain_time: SimDuration,
    /// Flash ops of the ISCE remap walk (mapping updates; normally 0).
    pub remap: PhaseOps,
    /// Firmware time spent in the remap walk.
    pub remap_time: SimDuration,
    /// Flash ops of the copy fallback (in-storage or host-driven).
    pub copy: PhaseOps,
    /// Time spent in the copy fallback.
    pub copy_time: SimDuration,
    /// Flash ops persisting metadata (device recovery log + engine
    /// superblock).
    pub meta: PhaseOps,
    /// Time spent persisting metadata.
    pub meta_time: SimDuration,
    /// Flash ops of the retired-zone deallocation (normally 0 — trims
    /// are mapping operations).
    pub trim: PhaseOps,
    /// Time spent trimming the retired journal zone.
    pub trim_time: SimDuration,
    /// Flash ops of garbage collection triggered inside the checkpoint
    /// window (foreground GC behind copy or metadata writes).
    pub gc: PhaseOps,
    /// Flash ops inside the window not attributed to any phase above.
    /// Zero by construction; a non-zero value means an accounting bug
    /// (debug builds assert on it).
    pub other: PhaseOps,
}

impl CheckpointPhases {
    /// Per-phase flash reads, summed.
    pub fn flash_reads(&self) -> u64 {
        self.remap.reads
            + self.copy.reads
            + self.meta.reads
            + self.trim.reads
            + self.gc.reads
            + self.other.reads
    }

    /// Per-phase flash programs, summed.
    pub fn flash_programs(&self) -> u64 {
        self.remap.programs
            + self.copy.programs
            + self.meta.programs
            + self.trim.programs
            + self.gc.programs
            + self.other.programs
    }

    /// Per-phase flash erases, summed.
    pub fn flash_erases(&self) -> u64 {
        self.remap.erases
            + self.copy.erases
            + self.meta.erases
            + self.trim.erases
            + self.gc.erases
            + self.other.erases
    }

    /// Adds another breakdown (one more checkpoint) into this one.
    pub fn accumulate(&mut self, other: &CheckpointPhases) {
        self.drain_time += other.drain_time;
        self.remap.accumulate(&other.remap);
        self.remap_time += other.remap_time;
        self.copy.accumulate(&other.copy);
        self.copy_time += other.copy_time;
        self.meta.accumulate(&other.meta);
        self.meta_time += other.meta_time;
        self.trim.accumulate(&other.trim);
        self.trim_time += other.trim_time;
        self.gc.accumulate(&other.gc);
        self.other.accumulate(&other.other);
    }
}

/// Everything measured over one simulated run.
///
/// `PartialEq` compares every field (including the full timeline), so two
/// reports are equal only when the runs were bit-identical — the property
/// the parallel sweep path is tested against.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Strategy under test.
    pub strategy: Strategy,
    /// Client threads.
    pub threads: u32,
    /// Queries completed in the measured phase.
    pub ops: u64,
    /// Measured (simulated) wall time.
    pub elapsed: SimDuration,
    /// Queries per simulated second.
    pub throughput: f64,
    /// All queries.
    pub latency: LatencyStats,
    /// Read queries only.
    pub latency_read: LatencyStats,
    /// Write (update/RMW) queries only.
    pub latency_write: LatencyStats,
    /// Reads issued while a checkpoint was in progress.
    pub latency_read_during_cp: LatencyStats,
    /// Writes issued while a checkpoint was in progress.
    pub latency_write_during_cp: LatencyStats,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Live JMT entries checkpointed in total (the "latest versions" the
    /// paper's Fig. 3(b) discussion counts).
    pub checkpoint_entries: u64,
    /// Mean checkpoint duration.
    pub checkpoint_mean: SimDuration,
    /// Longest checkpoint.
    pub checkpoint_max: SimDuration,
    /// Checkpoint entries remapped (Check-In / ISC-C path).
    pub remapped_entries: u64,
    /// Checkpoint entries copied.
    pub copied_entries: u64,
    /// Flash programs attributed to checkpoints — the paper's "redundant
    /// writes" (Fig. 8a).
    pub checkpoint_flash_programs: u64,
    /// Flash reads attributed to checkpoints.
    pub checkpoint_flash_reads: u64,
    /// Mapping units (re)written because of checkpoints — the paper's
    /// "redundant writes" (Fig. 8a). Counts deferred (buffered) copies
    /// that `checkpoint_flash_programs` misses; remaps cost zero.
    pub redundant_write_units: u64,
    /// Payload bytes (re)written because of checkpoints (unit-size
    /// independent form of `redundant_write_units`).
    pub redundant_write_bytes: u64,
    /// Flash accounting over the measured phase.
    pub flash: FlashStats,
    /// Raw bytes carried by write queries.
    pub write_query_bytes: u64,
    /// Total host-interface bytes moved (journals + checkpoints + meta).
    pub host_io_bytes: u64,
    /// Host I/O amplification: `host_io_bytes / write_query_bytes`
    /// (Fig. 3a's I/O row). `NaN` for write-free runs — a read-only
    /// workload has no write bytes to amplify, so no ratio exists.
    pub io_amplification: f64,
    /// Flash-operation amplification: flash ops per write-query page
    /// (Fig. 3a's flash row). `NaN` for write-free runs, like
    /// [`RunReport::io_amplification`].
    pub flash_amplification: f64,
    /// Write-amplification factor at the FTL. `NaN` when the device saw
    /// no host write bytes at all.
    pub waf: f64,
    /// Journal space overhead: stored/raw bytes (Fig. 13b).
    pub journal_space_overhead: f64,
    /// Superseded ("OLD") journal logs.
    pub superseded_logs: u64,
    /// Lifetime score: queries served per block erase, proportional to
    /// Equation (1)'s `Lifetime = PEC_max * T_op / BEC` for fixed
    /// `PEC_max` and equal work. Compare across strategies as a ratio;
    /// infinite when the run triggered no erases at all.
    pub lifetime_score: f64,
    /// Aggregated per-phase breakdown over every checkpoint in the run
    /// (sums of each checkpoint's [`CheckpointPhases`]).
    pub checkpoint_phases: CheckpointPhases,
    /// Worst-latency-over-time series (fixed-width, contiguous buckets;
    /// see [`TimelinePoint`]) — the view behind the paper's Fig. 9
    /// plots, where checkpoint windows appear as spikes and stalls as
    /// zero-count flat-lines.
    pub timeline: Vec<TimelinePoint>,
}

impl RunReport {
    /// Lifetime of this run relative to `baseline` (Equation 1 ratio).
    /// Returns `NaN` when either run wore the flash not at all (its
    /// score is infinite) — no finite ratio exists in that case.
    pub fn lifetime_vs(&self, baseline: &RunReport) -> f64 {
        if !self.lifetime_score.is_finite() || !baseline.lifetime_score.is_finite() {
            return f64::NAN;
        }
        self.lifetime_score / baseline.lifetime_score
    }

    /// Column names for [`RunReport::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "strategy,threads,ops,elapsed_us,throughput,mean_us,p50_us,p99_us,p999_us,p9999_us,\
         checkpoints,cp_mean_us,cp_entries,remapped,copied,redundant_bytes,\
         flash_reads,flash_programs,flash_erases,gc,invalid_units,\
         media_retries,blocks_retired,\
         retry_exhausted_read,retry_exhausted_program,retry_exhausted_erase,\
         integrity_detected,integrity_corrected,integrity_quarantined,\
         integrity_unrecoverable,scrub_pages,\
         io_amp,flash_amp,waf,space_overhead,lifetime,\
         cp_drain_us,cp_remap_us,cp_copy_us,cp_meta_us,cp_trim_us,\
         cp_copy_programs,cp_gc_programs"
    }

    /// Serialises the report as one CSV row matching
    /// [`RunReport::csv_header`] (machine-readable sweeps). Non-finite
    /// ratio metrics (e.g. amplification of a write-free run, lifetime
    /// of an erase-free run) serialise as an **empty field** so
    /// downstream parsers never see `inf`/`NaN` tokens.
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{:.0},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{},{:.1},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.1},{:.1},{:.1},{:.1},{:.1},{},{}",
            self.strategy.label(),
            self.threads,
            self.ops,
            self.elapsed.as_micros_f64(),
            self.throughput,
            self.latency.mean.as_micros_f64(),
            self.latency.p50.as_micros_f64(),
            self.latency.p99.as_micros_f64(),
            self.latency.p999.as_micros_f64(),
            self.latency.p9999.as_micros_f64(),
            self.checkpoints,
            self.checkpoint_mean.as_micros_f64(),
            self.checkpoint_entries,
            self.remapped_entries,
            self.copied_entries,
            self.redundant_write_bytes,
            self.flash.reads,
            self.flash.programs,
            self.flash.erases,
            self.flash.gc_invocations,
            self.flash.invalid_units,
            self.flash.media_retries,
            self.flash.blocks_retired,
            self.flash.retry_exhausted_read,
            self.flash.retry_exhausted_program,
            self.flash.retry_exhausted_erase,
            self.flash.integrity_detected,
            self.flash.integrity_corrected,
            self.flash.integrity_quarantined,
            self.flash.integrity_unrecoverable,
            self.flash.scrub_pages,
            csv_metric(self.io_amplification),
            csv_metric(self.flash_amplification),
            csv_metric(self.waf),
            csv_metric(self.journal_space_overhead),
            csv_metric(self.lifetime_score),
            self.checkpoint_phases.drain_time.as_micros_f64(),
            self.checkpoint_phases.remap_time.as_micros_f64(),
            self.checkpoint_phases.copy_time.as_micros_f64(),
            self.checkpoint_phases.meta_time.as_micros_f64(),
            self.checkpoint_phases.trim_time.as_micros_f64(),
            self.checkpoint_phases.copy.programs,
            self.checkpoint_phases.gc.programs,
        )
    }
}

/// Formats a ratio metric for CSV: fixed precision when finite, an
/// empty field otherwise (never `inf`/`NaN` tokens).
fn csv_metric(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        String::new()
    }
}

/// Formats a ratio metric for human-readable output: `n/a` when no
/// finite value exists (write-free or erase-free runs).
fn display_metric(v: f64, precision: usize) -> String {
    if v.is_finite() {
        format!("{v:.precision$}")
    } else {
        "n/a".to_string()
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} [{} threads] {:.0} ops/s over {}",
            self.strategy, self.threads, self.throughput, self.elapsed
        )?;
        writeln!(f, "  latency       {}", self.latency)?;
        writeln!(f, "  reads         {}", self.latency_read)?;
        writeln!(f, "  writes        {}", self.latency_write)?;
        writeln!(
            f,
            "  checkpoints   {} (mean {}, max {}), remap {}, copy {}",
            self.checkpoints,
            self.checkpoint_mean,
            self.checkpoint_max,
            self.remapped_entries,
            self.copied_entries
        )?;
        writeln!(
            f,
            "  flash         r {} / p {} / e {} (cp programs {}), gc {}, waf {}",
            self.flash.reads,
            self.flash.programs,
            self.flash.erases,
            self.checkpoint_flash_programs,
            self.flash.gc_invocations,
            display_metric(self.waf, 2)
        )?;
        if self.checkpoints > 0 {
            let p = &self.checkpoint_phases;
            writeln!(
                f,
                "  cp phases     drain {} remap {} copy {} meta {} trim {}; programs copy {} / meta {} / gc {}",
                p.drain_time, p.remap_time, p.copy_time, p.meta_time, p.trim_time,
                p.copy.programs, p.meta.programs, p.gc.programs
            )?;
        }
        if self.flash.transient_faults + self.flash.grown_bad_blocks + self.flash.blocks_retired > 0
        {
            writeln!(
                f,
                "  resilience    transient {} (retries {}), grown bad {}, retired {}",
                self.flash.transient_faults,
                self.flash.media_retries,
                self.flash.grown_bad_blocks,
                self.flash.blocks_retired
            )?;
        }
        if self.flash.integrity_detected + self.flash.scrub_pages > 0 {
            writeln!(
                f,
                "  integrity     detected {} (quarantined {}, corrected {}, unrecoverable {}), scrubbed {} pages",
                self.flash.integrity_detected,
                self.flash.integrity_quarantined,
                self.flash.integrity_corrected,
                self.flash.integrity_unrecoverable,
                self.flash.scrub_pages
            )?;
        }
        if self.flash.retry_exhausted_read
            + self.flash.retry_exhausted_program
            + self.flash.retry_exhausted_erase
            > 0
        {
            writeln!(
                f,
                "  retry budget  exhausted r {} / p {} / e {}",
                self.flash.retry_exhausted_read,
                self.flash.retry_exhausted_program,
                self.flash.retry_exhausted_erase
            )?;
        }
        write!(
            f,
            "  amplification io {}x flash {}x, space {}x, lifetime score {}",
            display_metric(self.io_amplification, 2),
            display_metric(self.flash_amplification, 2),
            display_metric(self.journal_space_overhead, 2),
            display_metric(self.lifetime_score, 3)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_from_recorder() {
        let mut r = LatencyRecorder::new();
        for us in 1..=100u64 {
            r.record(SimDuration::from_micros(us));
        }
        let s = LatencyStats::from_recorder(&r);
        assert_eq!(s.count, 100);
        assert!(s.p50 <= s.p99 && s.p99 <= s.p999 && s.p999 <= s.max);
        assert!(s.mean > SimDuration::ZERO);
    }

    #[test]
    fn flash_stats_total() {
        let fstat = FlashStats {
            reads: 1,
            programs: 2,
            erases: 3,
            ..FlashStats::default()
        };
        assert_eq!(fstat.total_ops(), 6);
    }

    #[test]
    fn csv_header_and_row_have_matching_arity() {
        let header_cols = RunReport::csv_header().split(',').count();
        // Build a report through a tiny real run to avoid a fake literal.
        let mut config = crate::SystemConfig::for_strategy(crate::Strategy::CheckIn);
        config.total_queries = 200;
        config.threads = 4;
        config.workload.record_count = 100;
        let report = crate::KvSystem::new(config).unwrap().run().unwrap();
        let row_cols = report.to_csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
        assert!(report.to_csv_row().starts_with("Check-In,4,200,"));
    }

    #[test]
    fn non_finite_metrics_serialize_safely() {
        let mut config = crate::SystemConfig::for_strategy(crate::Strategy::CheckIn);
        config.total_queries = 200;
        config.threads = 4;
        config.workload.record_count = 100;
        let mut report = crate::KvSystem::new(config).unwrap().run().unwrap();
        report.io_amplification = f64::NAN;
        report.flash_amplification = f64::INFINITY;
        report.waf = f64::NEG_INFINITY;
        report.lifetime_score = f64::INFINITY;

        let row = report.to_csv_row();
        assert!(!row.contains("inf"), "row leaks inf: {row}");
        assert!(!row.contains("NaN"), "row leaks NaN: {row}");
        // Non-finite fields are empty, and the arity still matches.
        assert_eq!(
            row.split(',').count(),
            RunReport::csv_header().split(',').count()
        );
        let cols: Vec<&str> = row.split(',').collect();
        let header: Vec<&str> = RunReport::csv_header().split(',').collect();
        for name in ["io_amp", "flash_amp", "waf", "lifetime"] {
            let idx = header.iter().position(|h| h.trim() == name).unwrap();
            assert_eq!(cols[idx], "", "{name} should serialize empty");
        }

        let text = report.to_string();
        assert!(text.contains("n/a"), "display should show n/a: {text}");
        assert!(!text.contains("inf"), "display leaks inf: {text}");
    }

    #[test]
    fn lifetime_vs_never_returns_inf() {
        let mut config = crate::SystemConfig::for_strategy(crate::Strategy::CheckIn);
        config.total_queries = 200;
        config.threads = 4;
        config.workload.record_count = 100;
        let mut a = crate::KvSystem::new(config).unwrap().run().unwrap();
        let mut b = a.clone();
        // An erase-free run has an infinite score; a ratio against a
        // worn run must not leak that infinity.
        a.lifetime_score = f64::INFINITY;
        b.lifetime_score = 2.0;
        assert!(a.lifetime_vs(&b).is_nan());
        assert!(b.lifetime_vs(&a).is_nan());
        assert!(a.lifetime_vs(&a).is_nan());
        b.lifetime_score = 4.0;
        let mut c = b.clone();
        c.lifetime_score = 2.0;
        assert!((b.lifetime_vs(&c) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_contains_key_fields() {
        let mut r = LatencyRecorder::new();
        r.record(SimDuration::from_micros(5));
        let s = LatencyStats::from_recorder(&r);
        let text = s.to_string();
        assert!(text.contains("p99.9"));
    }
}
