//! Run reports: every quantity the paper's tables and figures need.

use checkin_sim::{LatencyRecorder, SimDuration};

use crate::config::Strategy;

/// Summary of a latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyStats {
    /// Samples.
    pub count: u64,
    /// Mean.
    pub mean: SimDuration,
    /// Median.
    pub p50: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
    /// 99.9th percentile (the paper's headline tail metric).
    pub p999: SimDuration,
    /// 99.99th percentile.
    pub p9999: SimDuration,
    /// Maximum.
    pub max: SimDuration,
}

impl LatencyStats {
    /// Summarises a recorder.
    pub fn from_recorder(r: &LatencyRecorder) -> Self {
        LatencyStats {
            count: r.count(),
            mean: r.mean(),
            p50: r.quantile(0.5),
            p99: r.quantile(0.99),
            p999: r.quantile(0.999),
            p9999: r.quantile(0.9999),
            max: r.max(),
        }
    }
}

impl std::fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p99={} p99.9={} p99.99={} max={}",
            self.count, self.mean, self.p50, self.p99, self.p999, self.p9999, self.max
        )
    }
}

/// Flash-level accounting for the measured phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlashStats {
    /// Page reads.
    pub reads: u64,
    /// Page programs.
    pub programs: u64,
    /// Block erases.
    pub erases: u64,
    /// GC invocations.
    pub gc_invocations: u64,
    /// Units relocated by GC.
    pub gc_units_moved: u64,
    /// Invalid (stale) units generated.
    pub invalid_units: u64,
    /// Transient media failures injected by the fault plan.
    pub transient_faults: u64,
    /// Firmware retries spent absorbing transient failures.
    pub media_retries: u64,
    /// Blocks that developed a permanent (grown) defect.
    pub grown_bad_blocks: u64,
    /// Blocks retired (taken out of service) by the FTL.
    pub blocks_retired: u64,
}

impl FlashStats {
    /// Total flash operations.
    pub fn total_ops(&self) -> u64 {
        self.reads + self.programs + self.erases
    }
}

/// One bucket of the latency-over-time series (the paper's Fig. 9 view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelinePoint {
    /// Bucket start, relative to the measured phase.
    pub at: SimDuration,
    /// Worst query latency completed in the bucket.
    pub worst: SimDuration,
    /// Queries completed in the bucket.
    pub count: u64,
}

/// Everything measured over one simulated run.
///
/// `PartialEq` compares every field (including the full timeline), so two
/// reports are equal only when the runs were bit-identical — the property
/// the parallel sweep path is tested against.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Strategy under test.
    pub strategy: Strategy,
    /// Client threads.
    pub threads: u32,
    /// Queries completed in the measured phase.
    pub ops: u64,
    /// Measured (simulated) wall time.
    pub elapsed: SimDuration,
    /// Queries per simulated second.
    pub throughput: f64,
    /// All queries.
    pub latency: LatencyStats,
    /// Read queries only.
    pub latency_read: LatencyStats,
    /// Write (update/RMW) queries only.
    pub latency_write: LatencyStats,
    /// Reads issued while a checkpoint was in progress.
    pub latency_read_during_cp: LatencyStats,
    /// Writes issued while a checkpoint was in progress.
    pub latency_write_during_cp: LatencyStats,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Live JMT entries checkpointed in total (the "latest versions" the
    /// paper's Fig. 3(b) discussion counts).
    pub checkpoint_entries: u64,
    /// Mean checkpoint duration.
    pub checkpoint_mean: SimDuration,
    /// Longest checkpoint.
    pub checkpoint_max: SimDuration,
    /// Checkpoint entries remapped (Check-In / ISC-C path).
    pub remapped_entries: u64,
    /// Checkpoint entries copied.
    pub copied_entries: u64,
    /// Flash programs attributed to checkpoints — the paper's "redundant
    /// writes" (Fig. 8a).
    pub checkpoint_flash_programs: u64,
    /// Flash reads attributed to checkpoints.
    pub checkpoint_flash_reads: u64,
    /// Mapping units (re)written because of checkpoints — the paper's
    /// "redundant writes" (Fig. 8a). Counts deferred (buffered) copies
    /// that `checkpoint_flash_programs` misses; remaps cost zero.
    pub redundant_write_units: u64,
    /// Payload bytes (re)written because of checkpoints (unit-size
    /// independent form of `redundant_write_units`).
    pub redundant_write_bytes: u64,
    /// Flash accounting over the measured phase.
    pub flash: FlashStats,
    /// Raw bytes carried by write queries.
    pub write_query_bytes: u64,
    /// Total host-interface bytes moved (journals + checkpoints + meta).
    pub host_io_bytes: u64,
    /// Host I/O amplification: `host_io_bytes / write_query_bytes`
    /// (Fig. 3a's I/O row).
    pub io_amplification: f64,
    /// Flash-operation amplification: flash ops per write-query page
    /// (Fig. 3a's flash row).
    pub flash_amplification: f64,
    /// Write-amplification factor at the FTL.
    pub waf: f64,
    /// Journal space overhead: stored/raw bytes (Fig. 13b).
    pub journal_space_overhead: f64,
    /// Superseded ("OLD") journal logs.
    pub superseded_logs: u64,
    /// Lifetime score: queries served per block erase, proportional to
    /// Equation (1)'s `Lifetime = PEC_max * T_op / BEC` for fixed
    /// `PEC_max` and equal work. Compare across strategies as a ratio;
    /// infinite when the run triggered no erases at all.
    pub lifetime_score: f64,
    /// Worst-latency-over-time series (fixed-width buckets) — the view
    /// behind the paper's Fig. 9 plots, where checkpoint windows appear
    /// as spikes.
    pub timeline: Vec<TimelinePoint>,
}

impl RunReport {
    /// Lifetime of this run relative to `baseline` (Equation 1 ratio).
    /// Returns `NaN` when neither run wore the flash (no erases).
    pub fn lifetime_vs(&self, baseline: &RunReport) -> f64 {
        self.lifetime_score / baseline.lifetime_score
    }

    /// Column names for [`RunReport::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "strategy,threads,ops,elapsed_us,throughput,mean_us,p50_us,p99_us,p999_us,p9999_us,\
         checkpoints,cp_mean_us,cp_entries,remapped,copied,redundant_bytes,\
         flash_reads,flash_programs,flash_erases,gc,invalid_units,\
         media_retries,blocks_retired,\
         io_amp,flash_amp,waf,space_overhead,lifetime"
    }

    /// Serialises the report as one CSV row matching
    /// [`RunReport::csv_header`] (machine-readable sweeps).
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{:.0},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{},{:.1},{},{},{},{},{},{},{},{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4}",
            self.strategy.label(),
            self.threads,
            self.ops,
            self.elapsed.as_micros_f64(),
            self.throughput,
            self.latency.mean.as_micros_f64(),
            self.latency.p50.as_micros_f64(),
            self.latency.p99.as_micros_f64(),
            self.latency.p999.as_micros_f64(),
            self.latency.p9999.as_micros_f64(),
            self.checkpoints,
            self.checkpoint_mean.as_micros_f64(),
            self.checkpoint_entries,
            self.remapped_entries,
            self.copied_entries,
            self.redundant_write_bytes,
            self.flash.reads,
            self.flash.programs,
            self.flash.erases,
            self.flash.gc_invocations,
            self.flash.invalid_units,
            self.flash.media_retries,
            self.flash.blocks_retired,
            self.io_amplification,
            self.flash_amplification,
            self.waf,
            self.journal_space_overhead,
            self.lifetime_score,
        )
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} [{} threads] {:.0} ops/s over {}",
            self.strategy, self.threads, self.throughput, self.elapsed
        )?;
        writeln!(f, "  latency       {}", self.latency)?;
        writeln!(f, "  reads         {}", self.latency_read)?;
        writeln!(f, "  writes        {}", self.latency_write)?;
        writeln!(
            f,
            "  checkpoints   {} (mean {}, max {}), remap {}, copy {}",
            self.checkpoints,
            self.checkpoint_mean,
            self.checkpoint_max,
            self.remapped_entries,
            self.copied_entries
        )?;
        writeln!(
            f,
            "  flash         r {} / p {} / e {} (cp programs {}), gc {}, waf {:.2}",
            self.flash.reads,
            self.flash.programs,
            self.flash.erases,
            self.checkpoint_flash_programs,
            self.flash.gc_invocations,
            self.waf
        )?;
        if self.flash.transient_faults + self.flash.grown_bad_blocks + self.flash.blocks_retired > 0
        {
            writeln!(
                f,
                "  resilience    transient {} (retries {}), grown bad {}, retired {}",
                self.flash.transient_faults,
                self.flash.media_retries,
                self.flash.grown_bad_blocks,
                self.flash.blocks_retired
            )?;
        }
        write!(
            f,
            "  amplification io {:.2}x flash {:.2}x, space {:.2}x, lifetime score {:.3}",
            self.io_amplification,
            self.flash_amplification,
            self.journal_space_overhead,
            self.lifetime_score
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_from_recorder() {
        let mut r = LatencyRecorder::new();
        for us in 1..=100u64 {
            r.record(SimDuration::from_micros(us));
        }
        let s = LatencyStats::from_recorder(&r);
        assert_eq!(s.count, 100);
        assert!(s.p50 <= s.p99 && s.p99 <= s.p999 && s.p999 <= s.max);
        assert!(s.mean > SimDuration::ZERO);
    }

    #[test]
    fn flash_stats_total() {
        let fstat = FlashStats {
            reads: 1,
            programs: 2,
            erases: 3,
            ..FlashStats::default()
        };
        assert_eq!(fstat.total_ops(), 6);
    }

    #[test]
    fn csv_header_and_row_have_matching_arity() {
        let header_cols = RunReport::csv_header().split(',').count();
        // Build a report through a tiny real run to avoid a fake literal.
        let mut config = crate::SystemConfig::for_strategy(crate::Strategy::CheckIn);
        config.total_queries = 200;
        config.threads = 4;
        config.workload.record_count = 100;
        let report = crate::KvSystem::new(config).unwrap().run().unwrap();
        let row_cols = report.to_csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
        assert!(report.to_csv_row().starts_with("Check-In,4,200,"));
    }

    #[test]
    fn display_contains_key_fields() {
        let mut r = LatencyRecorder::new();
        r.record(SimDuration::from_micros(5));
        let s = LatencyStats::from_recorder(&r);
        let text = s.to_string();
        assert!(text.contains("p99.9"));
    }
}
