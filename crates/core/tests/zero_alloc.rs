//! Locks in the hot-loop allocation work: once the engine, FTL buffers,
//! and flash spare-page pool are warm, the steady-state query loop
//! (whole-sector journal updates + point reads) performs **zero** heap
//! allocations per operation.
//!
//! The measured window deliberately models steady state *within* a
//! checkpoint cycle: the working set has already been journaled once
//! since the last checkpoint (so JMT nodes exist), the FTL write buffer
//! and read scratch have reached their high-water capacity, and the
//! flash array's spare-page pool has been fed by zone-recycling erases.
//! Everything the window exercises — journal append, block write, page
//! drain, JMT update, flash program, point read — must then run
//! allocation-free.
//!
//! This file holds exactly one test so the process-global allocation
//! counter cannot pick up a concurrently running test's traffic.

// The one sanctioned use of `unsafe` in the workspace: a counting
// `GlobalAlloc` shim cannot be written without it.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use checkin_core::{EngineError, KvEngine, Layout, Strategy, SystemConfig};
use checkin_flash::FlashArray;
use checkin_ftl::Ftl;
use checkin_sim::SimTime;
use checkin_ssd::{Ssd, SsdTiming};

/// Counts every allocation and reallocation; frees are not counted
/// (returning memory is always fine in the steady state).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: AllocLayout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: AllocLayout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: AllocLayout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: AllocLayout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const RECORDS: u64 = 500;
const VALUE_BYTES: u32 = 700; // > 512 B mapping unit => Full-class log
const WINDOW_KEYS: u64 = 256;
/// Spare page-content shells required before the window starts: enough
/// to cover both passes' page drains with margin.
const SPARE_TARGET: usize = 160;

#[test]
fn steady_state_query_loop_is_allocation_free() {
    let mut config = SystemConfig::for_strategy(Strategy::CheckIn);
    // A small array so warm-up actually cycles blocks through GC: the
    // spare-page pool is fed by erases, and "steady state" only exists
    // once programs and erases have balanced.
    config.geometry = checkin_flash::FlashGeometry {
        channels: 2,
        dies_per_channel: 2,
        planes_per_die: 1,
        blocks_per_plane: 16,
        pages_per_block: 64,
        page_bytes: 4096,
    };
    config.gc_threshold_blocks = 4;
    config.gc_soft_threshold_blocks = 12;
    let layout = Layout::new(
        RECORDS,
        config.workload.sizes.max_bytes() + checkin_core::LOG_HEADER_BYTES,
        512,
        1 << 12,
    );
    let flash = FlashArray::new(config.geometry, config.flash_timing);
    let ftl = Ftl::new(flash, config.ftl_config()).unwrap();
    let mut ssd = Ssd::new(ftl, SsdTiming::paper_default());
    let mut engine = KvEngine::new(Strategy::CheckIn, layout, 0.7);

    let records: Vec<(u64, u32)> = (0..RECORDS).map(|k| (k, 800)).collect();
    let mut t = engine.load(&mut ssd, &records, SimTime::ZERO).unwrap();

    // Warm-up: run full checkpoint cycles until every reusable buffer
    // has reached its high-water mark and GC erases have filled the
    // flash spare-page pool. Each cycle ends on JournalFull so the
    // window starts right after a checkpoint with a fresh zone.
    let mut key = 0u64;
    let mut checkpoints = 0u32;
    loop {
        key = (key + 13) % RECORDS;
        match engine.update(&mut ssd, key, VALUE_BYTES, t) {
            Ok(d) => t = d,
            Err(EngineError::JournalFull) => {
                t = engine.checkpoint(&mut ssd, t).unwrap().finish;
                checkpoints += 1;
                let spares = ssd.ftl().flash().spare_page_count();
                // Both passes write ~2 blocks of journal; require enough
                // free-block headroom that GC stays quiescent throughout.
                if checkpoints >= 3 && spares >= SPARE_TARGET {
                    break;
                }
                assert!(
                    checkpoints < 200,
                    "warm-up never reached steady state ({spares} spare pages pooled, \
                     {} free blocks)",
                    ssd.ftl().free_block_count()
                );
            }
            Err(e) => panic!("warm-up update failed: {e}"),
        }
    }

    // First pass over the measured working set: re-journal each key once
    // after the last checkpoint (JMT re-insertion may allocate tree
    // nodes) and warm the read path.
    for k in 0..WINDOW_KEYS {
        t = engine.update(&mut ssd, k, VALUE_BYTES, t).unwrap();
        t = engine.get(&mut ssd, k, t).unwrap().finish;
    }

    // Measured window: the same keys again — pure steady state. GC
    // runs several rounds inside this window (the small array keeps
    // free blocks pinned at the threshold), so the migrate/drain path
    // is covered too.
    let before = ALLOCS.load(Ordering::SeqCst);
    for k in 0..WINDOW_KEYS {
        t = engine.update(&mut ssd, k, VALUE_BYTES, t).unwrap();
        t = engine.get(&mut ssd, k, t).unwrap().finish;
    }
    let delta = ALLOCS.load(Ordering::SeqCst) - before;

    assert_eq!(
        delta, 0,
        "steady-state loop allocated {delta} times over {WINDOW_KEYS} update+get pairs"
    );
    // The window must have exercised the real write path, not a no-op.
    assert!(engine.counters().get("engine.updates") >= 2 * WINDOW_KEYS);
    assert!(engine.counters().get("engine.reads") >= 2 * WINDOW_KEYS);
}
