//! Regression tests pinning the A2-deterministic-sim invariant end to
//! end: two runs of the same configuration must produce **byte-identical**
//! machine-readable output — the CSV row every sweep harness consumes and
//! the full counter dump every report is derived from.
//!
//! Field-by-field spot checks (see `system.rs`'s unit tests) would miss a
//! single nondeterministically-ordered counter or a wall-clock-derived
//! column; string equality over the whole serialized surface cannot.

use checkin_core::{KvSystem, RunReport, Strategy, SystemConfig};
use checkin_flash::FlashGeometry;

fn quick_config(strategy: Strategy) -> SystemConfig {
    let mut c = SystemConfig::for_strategy(strategy);
    c.total_queries = 2_000;
    c.threads = 4;
    c.workload.record_count = 300;
    c.journal_trigger_sectors = 1_024;
    c.geometry = FlashGeometry {
        channels: 2,
        dies_per_channel: 2,
        planes_per_die: 1,
        blocks_per_plane: 64,
        pages_per_block: 64,
        page_bytes: 4096,
    };
    c.gc_threshold_blocks = 4;
    c.gc_soft_threshold_blocks = 16;
    c
}

/// One run's complete serialized output: the CSV row plus every counter
/// of every layer, in iteration order (which must itself be stable).
fn serialized_run(strategy: Strategy) -> (RunReport, String) {
    let mut system = KvSystem::new(quick_config(strategy)).unwrap();
    let report = system.run().unwrap();
    let mut out = String::new();
    out.push_str(RunReport::csv_header());
    out.push('\n');
    out.push_str(&report.to_csv_row());
    out.push('\n');
    for (key, value) in system.ssd().ftl().flash().counters().iter() {
        out.push_str(&format!("flash {key}={value}\n"));
    }
    for (key, value) in system.ssd().ftl().counters().iter() {
        out.push_str(&format!("ftl {key}={value}\n"));
    }
    for (key, value) in system.ssd().counters().iter() {
        out.push_str(&format!("ssd {key}={value}\n"));
    }
    for (key, value) in system.engine().counters().iter() {
        out.push_str(&format!("engine {key}={value}\n"));
    }
    (report, out)
}

#[test]
fn csv_and_counters_are_byte_identical_across_runs() {
    for strategy in Strategy::all() {
        let (r1, s1) = serialized_run(strategy);
        let (_, s2) = serialized_run(strategy);
        assert!(r1.ops > 0 && r1.checkpoints > 0, "{strategy}: trivial run");
        assert_eq!(s1, s2, "{strategy}: serialized output diverged");
    }
}

#[test]
fn recovery_is_byte_deterministic_too() {
    // The recovery path rebuilds mapping state from scans; hash-ordered
    // iteration there would reorder work and show up in the counters.
    let run = |()| {
        let mut system = KvSystem::new(quick_config(Strategy::CheckIn)).unwrap();
        system.run().unwrap();
        let (_, ssd) = system.verify_parts();
        ssd.ftl_mut().flash_mut().cut_power();
        let stats = ssd.recover_power_loss().unwrap();
        let mut out = format!("{stats:?}\n");
        for (key, value) in ssd.counters().iter() {
            out.push_str(&format!("ssd {key}={value}\n"));
        }
        for (key, value) in ssd.ftl().counters().iter() {
            out.push_str(&format!("ftl {key}={value}\n"));
        }
        out
    };
    assert_eq!(run(()), run(()), "recovery output diverged between runs");
}
