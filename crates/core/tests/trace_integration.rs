//! Cross-layer tracing and metrics-accounting integration tests.
//!
//! These exercise the observability subsystem end to end (engine →
//! journal → queue → ISCE → FTL → flash) and pin the accounting fixes:
//! quota-remainder distribution, NaN amplification on read-only runs,
//! per-phase checkpoint attribution, and timeline contiguity.

use checkin_core::{KvSystem, RunReport, Strategy, SystemConfig};
use checkin_flash::FlashGeometry;
use checkin_sim::{SimDuration, TraceLayer, Tracer};
use checkin_workload::OpMix;

fn quick_config(strategy: Strategy) -> SystemConfig {
    let mut c = SystemConfig::for_strategy(strategy);
    c.total_queries = 3_000;
    c.threads = 8;
    c.workload.record_count = 400;
    c.journal_trigger_sectors = 1_024;
    c.geometry = FlashGeometry {
        channels: 2,
        dies_per_channel: 2,
        planes_per_die: 1,
        blocks_per_plane: 64,
        pages_per_block: 64,
        page_bytes: 4096,
    };
    c.gc_threshold_blocks = 4;
    c.gc_soft_threshold_blocks = 16;
    c
}

#[test]
fn traced_run_covers_all_six_layers() {
    let mut system = KvSystem::new(quick_config(Strategy::CheckIn)).unwrap();
    let tracer = Tracer::ring_buffered(200_000);
    system.set_tracer(tracer.clone());
    let report = system.run().unwrap();
    assert!(report.checkpoints > 0, "run must checkpoint to cover ISCE");

    let events = tracer.drain();
    assert!(!events.is_empty());
    for layer in TraceLayer::all() {
        assert!(
            events.iter().any(|e| e.layer == layer),
            "no event from layer {:?}",
            layer
        );
    }
    // Sequence numbers are strictly increasing in drain order (single
    // ring, stamped at push).
    assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    // Every event renders as a well-formed JSON object line.
    for e in events.iter().take(500) {
        let line = e.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"layer\":"), "{line}");
    }
}

#[test]
fn disabled_tracer_emits_nothing_and_changes_nothing() {
    let with_tracer = {
        let mut system = KvSystem::new(quick_config(Strategy::IscB)).unwrap();
        system.set_tracer(Tracer::ring_buffered(100_000));
        system.run().unwrap()
    };
    let without = KvSystem::new(quick_config(Strategy::IscB))
        .unwrap()
        .run()
        .unwrap();
    // Tracing must be observer-only: identical simulated results.
    assert_eq!(with_tracer.elapsed, without.elapsed);
    assert_eq!(with_tracer.flash.programs, without.flash.programs);
    assert_eq!(with_tracer.checkpoints, without.checkpoints);

    let tracer = Tracer::disabled();
    assert!(!tracer.is_enabled());
    assert!(tracer.drain().is_empty());
}

#[test]
fn phase_attribution_reconciles_for_every_strategy() {
    for strategy in Strategy::all() {
        let report = KvSystem::new(quick_config(strategy))
            .unwrap()
            .run()
            .unwrap();
        assert!(report.checkpoints > 0, "{strategy}");
        let p = &report.checkpoint_phases;
        assert_eq!(
            p.flash_programs(),
            report.checkpoint_flash_programs,
            "{strategy}: per-phase programs must sum to the aggregate"
        );
        assert_eq!(
            p.flash_reads(),
            report.checkpoint_flash_reads,
            "{strategy}: per-phase reads must sum to the aggregate"
        );
        assert_eq!(
            p.other.total(),
            0,
            "{strategy}: no checkpoint flash op may be unattributed"
        );
        // Data movement happened somewhere: remap, copy, or meta.
        assert!(
            p.remap.programs + p.copy.programs + p.meta.programs > 0,
            "{strategy}"
        );
        // Remapping strategies do their movement in the remap phase.
        if matches!(strategy, Strategy::IscC | Strategy::CheckIn) {
            assert!(report.remapped_entries > 0, "{strategy}");
        }
    }
}

#[test]
fn quota_remainder_is_not_lost() {
    // 1001 queries over 8 threads: 125 each plus a remainder of 1. The
    // report must account for every requested query.
    let mut c = quick_config(Strategy::CheckIn);
    c.total_queries = 1_001;
    c.threads = 8;
    let report = KvSystem::new(c).unwrap().run().unwrap();
    assert_eq!(report.ops, 1_001);
    let counted: u64 = report.timeline.iter().map(|p| p.count).sum();
    assert_eq!(counted, 1_001, "timeline buckets must cover every query");
}

#[test]
fn read_only_run_reports_nan_amplification_not_fabricated_ratios() {
    let mut c = quick_config(Strategy::CheckIn);
    c.workload.mix = OpMix::C; // 100% reads
    c.total_queries = 1_000;
    let report = KvSystem::new(c).unwrap().run().unwrap();
    assert_eq!(report.write_query_bytes, 0);
    assert!(
        report.io_amplification.is_nan(),
        "no writes -> amplification undefined, got {}",
        report.io_amplification
    );
    assert!(report.flash_amplification.is_nan());
    assert!(report.waf.is_nan());

    // Serialized forms stay well-formed: empty CSV fields, "n/a" display.
    let row = report.to_csv_row();
    assert_eq!(
        row.split(',').count(),
        RunReport::csv_header().split(',').count()
    );
    assert!(!row.contains("NaN") && !row.contains("inf"), "{row}");
    let text = report.to_string();
    assert!(text.contains("n/a"), "{text}");
}

#[test]
fn timeline_is_contiguous_with_flat_line_stalls() {
    let mut c = quick_config(Strategy::Baseline);
    c.lock_queries_during_checkpoint = true;
    c.threads = 2;
    let report = KvSystem::new(c).unwrap().run().unwrap();
    assert!(report.checkpoints > 0);

    let bucket = SimDuration::from_millis(20);
    assert!(!report.timeline.is_empty());
    // Contiguous: bucket i starts exactly at i * width — no gaps.
    for (i, p) in report.timeline.iter().enumerate() {
        assert_eq!(p.at, bucket * i as u64, "bucket {i} misplaced");
        if p.count == 0 {
            assert_eq!(p.worst, SimDuration::ZERO);
        }
    }
    // The series covers the whole measured window, including any
    // trailing checkpoint/GC tail with no completions.
    let covered = bucket * report.timeline.len() as u64;
    assert!(
        covered >= report.elapsed,
        "timeline ({covered:?}) must reach elapsed ({:?})",
        report.elapsed
    );
    let counted: u64 = report.timeline.iter().map(|p| p.count).sum();
    assert_eq!(counted, report.ops);
}
