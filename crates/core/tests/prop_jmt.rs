//! Property tests pinning the dense Vec-backed JMT to a `BTreeMap`-based
//! shadow model: random record/drain soups must agree on lookups, live
//! and superseded accounting, byte statistics, ascending-key iteration,
//! and the contents of every checkpoint drain.

use std::collections::BTreeMap;

use checkin_core::{Jmt, JmtEntry};
use checkin_testkit::{check, soup, TestRng};

/// Hot dense keys.
const DENSE_KEYS: u64 = 128;
/// Sparse keys above the JMT's dense limit (`1 << 22`), including the
/// superblock pseudo-key band near `u64::MAX`.
const SPARSE_KEYS: u64 = 5;

#[derive(Debug, Clone, Copy)]
enum Op {
    Record { key: u64 },
    Drain,
}

fn any_op(rng: &mut TestRng) -> Op {
    match rng.weighted(&[24, 1]) {
        0 => Op::Record {
            key: match rng.weighted(&[10, 1, 1]) {
                0 => rng.below(DENSE_KEYS),
                1 => (1 << 22) + rng.below(SPARSE_KEYS),
                _ => u64::MAX - 1 - rng.below(SPARSE_KEYS),
            },
        },
        _ => Op::Drain,
    }
}

fn any_entry(rng: &mut TestRng, version: u64) -> JmtEntry {
    let sectors = rng.range_u32(1, 4);
    JmtEntry {
        journal_lba: rng.below(1 << 20),
        sectors,
        version,
        raw_bytes: rng.range_u32(1, 2048),
        stored_bytes: sectors * 512,
        merged: rng.chance(0.2),
        tombstone: rng.chance(0.1),
    }
}

/// Ground truth: an ordered map plus the zone statistics recomputed the
/// slow way.
#[derive(Default)]
struct Shadow {
    entries: BTreeMap<u64, JmtEntry>,
    appended: u64,
    superseded: u64,
    raw_bytes: u64,
    stored_bytes: u64,
}

impl Shadow {
    fn record(&mut self, key: u64, entry: JmtEntry) {
        self.appended += 1;
        self.raw_bytes += entry.raw_bytes as u64;
        self.stored_bytes += entry.stored_bytes as u64;
        if self.entries.insert(key, entry).is_some() {
            self.superseded += 1;
        }
    }

    fn drain(&mut self) -> Vec<(u64, JmtEntry)> {
        let drained = std::mem::take(&mut self.entries).into_iter().collect();
        self.appended = 0;
        self.superseded = 0;
        self.raw_bytes = 0;
        self.stored_bytes = 0;
        drained
    }
}

fn assert_equivalent(jmt: &Jmt, shadow: &Shadow) {
    let from_jmt: Vec<(u64, JmtEntry)> = jmt.iter().map(|(k, e)| (k, *e)).collect();
    let from_shadow: Vec<(u64, JmtEntry)> = shadow.entries.iter().map(|(&k, &e)| (k, e)).collect();
    assert_eq!(from_jmt, from_shadow, "entries / iteration order");
    assert_eq!(jmt.live_keys(), shadow.entries.len(), "live keys");
    assert_eq!(jmt.is_empty(), shadow.entries.is_empty(), "emptiness");
    assert_eq!(jmt.appended(), shadow.appended, "appended");
    assert_eq!(jmt.superseded(), shadow.superseded, "superseded");
    assert_eq!(jmt.raw_bytes(), shadow.raw_bytes, "raw bytes");
    assert_eq!(jmt.stored_bytes(), shadow.stored_bytes, "stored bytes");
}

fn run_ops(ops: &[Op], rng: &mut TestRng) {
    let mut jmt = Jmt::new();
    let mut shadow = Shadow::default();
    let mut drain_buf: Vec<(u64, JmtEntry)> = Vec::new();
    let mut version = 0u64;

    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Record { key } => {
                version += 1;
                let entry = any_entry(rng, version);
                jmt.record(key, entry);
                shadow.record(key, entry);
                assert_eq!(jmt.lookup(key), Some(&entry), "lookup after record");
            }
            Op::Drain => {
                // Alternate between the buffer-reusing drain and the
                // allocating convenience form; they must agree.
                let drained = if i % 2 == 0 {
                    jmt.drain_into(&mut drain_buf);
                    drain_buf.clone()
                } else {
                    jmt.take_for_checkpoint()
                };
                assert_eq!(drained, shadow.drain(), "drained checkpoint set");
                assert!(jmt.is_empty(), "empty after drain");
                assert_eq!(jmt.appended(), 0, "stats reset by drain");
            }
        }
    }
    assert_equivalent(&jmt, &shadow);

    // One final drain: whatever is left comes out in ascending key order.
    let last = jmt.take_for_checkpoint();
    assert!(last.windows(2).all(|w| w[0].0 < w[1].0), "ascending keys");
    assert_eq!(last, shadow.drain(), "final drain");
}

#[test]
fn jmt_matches_map_shadow_under_random_ops() {
    check("jmt_matches_map_shadow", 96, |rng| {
        let len = rng.range_usize(1, 399);
        let ops = soup(rng, len, any_op);
        run_ops(&ops, rng);
    });
}

/// Long soups spanning many drain cycles: the recycled dense array must
/// not leak entries or statistics across checkpoints.
#[test]
fn jmt_matches_map_shadow_across_many_checkpoints() {
    check("jmt_many_checkpoints", 12, |rng| {
        let len = rng.range_usize(3_000, 3_999);
        let ops = soup(rng, len, any_op);
        run_ops(&ops, rng);
    });
}

/// Equivalence after every single operation.
#[test]
fn jmt_stays_equivalent_at_every_step() {
    check("jmt_stepwise_equivalence", 16, |rng| {
        let len = rng.range_usize(1, 99);
        let ops = soup(rng, len, any_op);
        let mut jmt = Jmt::new();
        let mut shadow = Shadow::default();
        let mut version = 0u64;
        for op in &ops {
            match *op {
                Op::Record { key } => {
                    version += 1;
                    let entry = any_entry(rng, version);
                    jmt.record(key, entry);
                    shadow.record(key, entry);
                }
                Op::Drain => {
                    assert_eq!(jmt.take_for_checkpoint(), shadow.drain());
                }
            }
            assert_equivalent(&jmt, &shadow);
        }
    });
}
