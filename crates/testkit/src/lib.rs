//! A tiny, dependency-free randomized property-testing harness.
//!
//! The build must succeed with no network access and an empty registry
//! cache, so the workspace cannot depend on `proptest`. This crate covers
//! the slice of it the test suites actually use: run a property over many
//! deterministically seeded random cases, and on failure report the case
//! index and seed so the exact input is reproducible with
//! [`TestRng::seed_from`].
//!
//! ```
//! use checkin_testkit::{check, TestRng};
//!
//! check("addition commutes", 64, |rng| {
//!     let (a, b) = (rng.below(1000), rng.below(1000));
//!     assert_eq!(a + b, b + a);
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// SplitMix64 step, used for seeding and per-case seed derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256** generator for test-case inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() bound must be positive");
        // Lemire multiply-shift rejection.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64 needs lo <= hi");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `u32` in `[lo, hi]`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(lo as u64, hi as u64) as u32
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `u8` over its full range.
    pub fn any_u8(&mut self) -> u8 {
        (self.next_u64() & 0xFF) as u8
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit_f64() * (hi - lo)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Picks an index according to integer weights (proptest's
    /// `prop_oneof!` weighting).
    ///
    /// # Panics
    ///
    /// Panics when `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "weights must sum to a positive value");
        let mut draw = self.below(total);
        for (i, &w) in weights.iter().enumerate() {
            if draw < w as u64 {
                return i;
            }
            draw -= w as u64;
        }
        unreachable!("draw below total always lands in a bucket")
    }
}

/// Base seed mixed with the case index to derive each case's RNG.
pub const BASE_SEED: u64 = 0xC0FF_EE00_5EED;

/// Seed of case `case` under `base` (exposed so a failing case can be
/// replayed in isolation).
pub fn case_seed(base: u64, case: u64) -> u64 {
    let mut s = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s)
}

/// Runs `property` over `cases` deterministically seeded random cases.
/// A panic inside the property is re-raised after printing the case index
/// and seed, so the failure reproduces with
/// `TestRng::seed_from(seed)`.
pub fn check<F>(name: &str, cases: u64, mut property: F)
where
    F: FnMut(&mut TestRng),
{
    check_seeded(name, BASE_SEED, cases, &mut property);
}

/// [`check`] with an explicit base seed.
pub fn check_seeded<F>(name: &str, base: u64, cases: u64, property: &mut F)
where
    F: FnMut(&mut TestRng),
{
    for case in 0..cases {
        let seed = case_seed(base, case);
        let mut rng = TestRng::seed_from(seed);
        let result = catch_unwind(AssertUnwindSafe(|| property(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "property '{name}' failed at case {case}/{cases} \
                 (replay with TestRng::seed_from({seed:#x}))"
            );
            resume_unwind(payload);
        }
    }
}

/// Builds a random operation soup: `len` draws from `gen`.
pub fn soup<T>(rng: &mut TestRng, len: usize, mut gen: impl FnMut(&mut TestRng) -> T) -> Vec<T> {
    (0..len).map(|_| gen(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_reproducible() {
        let mut a = TestRng::seed_from(42);
        let mut b = TestRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::seed_from(1);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn range_covers_endpoints() {
        let mut r = TestRng::seed_from(2);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..10_000 {
            match r.range_u64(3, 5) {
                3 => lo_seen = true,
                5 => hi_seen = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn weighted_zero_weight_never_drawn() {
        let mut r = TestRng::seed_from(3);
        for _ in 0..1_000 {
            assert_ne!(r.weighted(&[1, 0, 3]), 1);
        }
    }

    #[test]
    fn check_runs_all_cases() {
        let mut n = 0u64;
        check("counter", 25, |_| n += 1);
        assert_eq!(n, 25);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn check_propagates_failure() {
        check("fails", 10, |rng| {
            if rng.below(2) == 0 {
                panic!("deliberate");
            }
        });
    }

    #[test]
    fn case_seeds_differ() {
        assert_ne!(case_seed(BASE_SEED, 0), case_seed(BASE_SEED, 1));
    }

    #[test]
    fn unit_f64_in_range_and_centered() {
        let mut r = TestRng::seed_from(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }
}
