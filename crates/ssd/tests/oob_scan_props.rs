//! Property tests for the §III-G SPOR contract: a full OOB scan after a
//! random write history discovers exactly the newest flash mapping per
//! logical unit, in deterministic order, and a power cut at a random
//! point never loses an acknowledged write.

use std::collections::HashMap;

use checkin_flash::{FaultConfig, FaultPlan, FlashArray, FlashGeometry, FlashTiming, OobKind};
use checkin_ftl::{Ftl, FtlConfig};
use checkin_sim::SimTime;
use checkin_ssd::{ReadRequest, Ssd, SsdError, SsdTiming, WriteContent, WriteRequest};
use checkin_testkit::{check_seeded, TestRng, BASE_SEED};

const LBA_SPACE: u64 = 48;

fn ssd() -> Ssd {
    let flash = FlashArray::new(
        FlashGeometry {
            channels: 2,
            dies_per_channel: 1,
            planes_per_die: 1,
            blocks_per_plane: 8,
            pages_per_block: 16,
            page_bytes: 4096,
        },
        FlashTiming::mlc(),
    );
    let ftl = Ftl::new(
        flash,
        FtlConfig {
            unit_bytes: 512,
            write_points: 2,
            gc_threshold_blocks: 4,
            gc_soft_threshold_blocks: 8,
            write_buffer_units: 16,
            ..FtlConfig::default()
        },
    )
    .unwrap();
    Ssd::new(ftl, SsdTiming::paper_default())
}

fn record(lba: u64, version: u64) -> WriteRequest {
    WriteRequest {
        lba,
        sectors: 1,
        content: WriteContent::Record {
            key: lba,
            version,
            bytes: 512,
        },
    }
}

/// After N random single-unit writes and a flush, the OOB scan finds
/// every written lpn; per-lpn sequences respect write order; iteration
/// is sorted by lpn; and the full SPOR contract holds.
#[test]
fn full_scan_discovers_exactly_the_newest_mapping_per_lpn() {
    check_seeded(
        "oob-scan-newest-mapping",
        BASE_SEED,
        24,
        &mut |rng: &mut TestRng| {
            let mut s = ssd();
            let mut t = SimTime::ZERO;
            // last_write[lpn] = index of that lpn's final write.
            let mut last_write: HashMap<u64, u64> = HashMap::new();
            let writes = rng.range_u64(10, 200);
            for i in 0..writes {
                let lba = rng.below(LBA_SPACE);
                t = s
                    .write(&record(lba, i + 1), OobKind::Data, t)
                    .expect("fault-free write");
                last_write.insert(lba, i);
            }
            s.flush(t).expect("flush");

            let snap = s.scan_oob();
            // Discovery: every written lpn has a record.
            for &lpn in last_write.keys() {
                assert!(snap.lookup(lpn).is_some(), "lpn {lpn} undiscovered");
            }
            // Determinism (sorted-lpn iteration) and newest-wins: lpns
            // ordered by their final write index must have strictly
            // increasing OOB sequences.
            let mut prev_lpn = None;
            for (lpn, _) in snap.iter() {
                assert!(prev_lpn < Some(lpn), "iteration must ascend by lpn");
                prev_lpn = Some(lpn);
            }
            let mut by_order: Vec<(u64, u64)> =
                last_write.iter().map(|(&lpn, &idx)| (idx, lpn)).collect();
            by_order.sort_unstable();
            let seqs: Vec<u64> = by_order
                .iter()
                .map(|&(_, lpn)| snap.lookup(lpn).unwrap().sequence)
                .collect();
            assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "later final writes must carry newer sequences"
            );
            s.verify_spor_contract().expect("SPOR contract");
        },
    );
}

/// A power cut at a random tick, followed by recovery, preserves every
/// acknowledged write (the single in-flight write may be old or new).
#[test]
fn random_cut_point_recovery_matches_acked_writes() {
    check_seeded(
        "oob-cut-recovery",
        BASE_SEED ^ 0x5105_F00D,
        24,
        &mut |rng: &mut TestRng| {
            let mut s = ssd();
            let cut_tick = rng.range_u64(3, 500);
            s.ftl_mut()
                .flash_mut()
                .arm_faults(FaultPlan::new(FaultConfig::power_cut(
                    rng.next_u64(),
                    cut_tick,
                )));
            let mut t = SimTime::ZERO;
            let mut shadow: HashMap<u64, u64> = HashMap::new();
            let mut inflight = None;
            for i in 0..300u64 {
                let lba = rng.below(LBA_SPACE);
                match s.write(&record(lba, i + 1), OobKind::Data, t) {
                    Ok(done) => {
                        t = done;
                        shadow.insert(lba, i + 1);
                    }
                    Err(SsdError::Ftl(e)) if e.is_power_loss() => {
                        inflight = Some((lba, i + 1));
                        break;
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            if !s.powered_off() {
                // The schedule outlived the workload: cut manually so the
                // recovery path is always exercised.
                s.ftl_mut().flash_mut().cut_power();
            }
            s.recover_power_loss().unwrap();
            for (&lba, &version) in &shadow {
                let (frags, _) = s
                    .read(
                        &ReadRequest {
                            lba,
                            sectors: 1,
                            key: Some(lba),
                        },
                        SimTime::ZERO,
                    )
                    .expect("post-recovery read");
                let got = frags
                    .iter()
                    .map(|f| f.version)
                    .max()
                    .unwrap_or_else(|| panic!("lba {lba} lost after recovery"));
                let acceptable =
                    got == version || matches!(inflight, Some((l, v)) if l == lba && got == v);
                assert!(acceptable, "lba {lba}: got v{got}, acked v{version}");
            }
            s.ftl()
                .check_invariants()
                .expect("post-recovery invariants");
            // The device still accepts writes after recovery.
            s.write(&record(0, 9_999), OobKind::Data, SimTime::ZERO)
                .expect("post-recovery write");
        },
    );
}
