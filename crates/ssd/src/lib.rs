//! SSD device model with the in-storage checkpointing engine (ISCE).
//!
//! Sits on top of [`checkin_ftl`] and exposes the host-visible command
//! set used by the Check-In paper:
//!
//! * standard block commands — read, write, flush, deallocate — with full
//!   interface timing (PCIe link occupancy, per-command overhead, firmware
//!   CPU, bounded submission-queue depth);
//! * the vendor-specific extensions of §III-C: [`Ssd::cow_single`] (one
//!   copy-on-write entry per command, ISC-A), [`Ssd::checkpoint`] (one
//!   batched multi-CoW command, ISC-B and up), and journal deallocation;
//! * the ISCE itself ([`isce` planning + execution inside `Ssd`]):
//!   checkpoint entries are classified remap-vs-copy per Algorithm 1, the
//!   copy class executes as consecutive reads then consecutive writes, and
//!   the deallocator schedules background GC in idle windows.
//!
//! [`isce` planning + execution inside `Ssd`]: plan_entry
//!
//! # Examples
//!
//! An in-storage checkpoint by remapping:
//!
//! ```
//! use checkin_flash::{FlashArray, FlashGeometry, FlashTiming, OobKind};
//! use checkin_ftl::{Ftl, FtlConfig};
//! use checkin_ssd::{CheckpointMode, CowEntry, ReadRequest, Ssd, SsdTiming, WriteContent, WriteRequest};
//! use checkin_sim::SimTime;
//!
//! let flash = FlashArray::new(FlashGeometry::small(), FlashTiming::mlc());
//! let ftl = Ftl::new(flash, FtlConfig { unit_bytes: 512, write_points: 2, ..FtlConfig::default() }).unwrap();
//! let mut ssd = Ssd::new(ftl, SsdTiming::paper_default());
//!
//! // Journaling appended key 5's new version at journal LBA 1000.
//! let t = ssd.write(
//!     &WriteRequest { lba: 1000, sectors: 2, content: WriteContent::Record { key: 5, version: 2, bytes: 1024 } },
//!     OobKind::Journal,
//!     SimTime::ZERO,
//! )?;
//! let t = ssd.flush(t)?;
//! // Checkpoint: remap it to its data-area home at LBA 8 — zero copies.
//! let entry = CowEntry { src_lba: 1000, dst_lba: 8, sectors: 2, dst_sectors: 2, key: 5, merged: false };
//! let t = ssd.checkpoint(&[entry], CheckpointMode::Remap, t)?;
//! let (frags, _) = ssd.read(&ReadRequest { lba: 8, sectors: 2, key: Some(5) }, t)?;
//! assert_eq!(frags[0].version, 2);
//! # Ok::<(), checkin_ssd::SsdError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Recovery crate: panics are forbidden outside tests (checkin-analyze A1
// enforces the recovery paths lexically; clippy enforces the whole crate).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod command;
mod device;
mod error;
mod isce;
mod queue;
mod spor;
mod timing;

pub use command::{
    CheckpointMode, CowEntry, ReadRequest, WriteContent, WriteRequest, SECTOR_BYTES,
};
pub use device::{CpPhaseTimes, Ssd};
pub use error::SsdError;
pub use isce::{classify_batch, plan_entry, should_background_gc, EntryPlan};
pub use queue::CommandQueue;
pub use spor::{OobRecord, OobSnapshot};
pub use timing::SsdTiming;
