//! Host-visible command set, including the vendor-specific extensions the
//! paper adds (§III-C): single CoW, batched checkpoint, journal
//! deallocation.

use checkin_flash::Fragment;

/// Sector size of the host block interface (the paper's "typical host
/// sector size").
pub const SECTOR_BYTES: u32 = 512;

/// What a write request carries (content tags, not raw bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteContent {
    /// One record (or one aligned journal log) of `bytes` payload.
    Record {
        /// Key-value store key.
        key: u64,
        /// Record version.
        version: u64,
        /// Actual payload bytes (may be less than `sectors * 512` when the
        /// engine rounded the log up to a size class).
        bytes: u32,
    },
    /// A merged journal sector holding several small records
    /// (sector-aligned journaling's `MERGED` type).
    Merged(Vec<Fragment>),
    /// A deletion tombstone: journals "key was deleted at version". The
    /// payload is a zero-byte fragment; readers treat it as absence.
    Tombstone {
        /// Deleted key.
        key: u64,
        /// Version of the deletion.
        version: u64,
    },
}

/// A block-interface write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteRequest {
    /// Start sector.
    pub lba: u64,
    /// Length in sectors.
    pub sectors: u32,
    /// Content tags for the range.
    pub content: WriteContent,
}

impl WriteRequest {
    /// Payload bytes carried by this request.
    pub fn payload_bytes(&self) -> u64 {
        match &self.content {
            WriteContent::Record { bytes, .. } => *bytes as u64,
            WriteContent::Merged(frags) => frags.iter().map(|f| f.bytes as u64).sum(),
            WriteContent::Tombstone { .. } => 0,
        }
    }

    /// Bytes moved on the host link (whole sectors).
    pub fn wire_bytes(&self) -> u64 {
        self.sectors as u64 * SECTOR_BYTES as u64
    }
}

/// A block-interface read of one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadRequest {
    /// Start sector.
    pub lba: u64,
    /// Length in sectors.
    pub sectors: u32,
    /// Key whose fragments the caller is after (`None` returns everything
    /// found in the range).
    pub key: Option<u64>,
}

/// One entry of a CoW / checkpoint command: move the journal copy at
/// `src_lba` to its data-area home `dst_lba`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CowEntry {
    /// Journal location (sectors).
    pub src_lba: u64,
    /// Data-area home (sectors).
    pub dst_lba: u64,
    /// Source length in sectors (the journal log's span).
    pub sectors: u32,
    /// Destination extent in sectors (the record's home footprint). On
    /// the copy path the gathered record is rewritten into this many
    /// sectors; remaps use `sectors` because source and destination alias
    /// the same units.
    pub dst_sectors: u32,
    /// Key being checkpointed (identifies the fragment within merged
    /// sectors).
    pub key: u64,
    /// True when the journal copy shares its sector(s) with other records
    /// (`MERGED`); such entries are never remap-eligible.
    pub merged: bool,
}

/// How the device executes checkpoint entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointMode {
    /// In-storage copy: read the journal units and program them to the
    /// data area (ISC-A / ISC-B).
    Copy,
    /// Remap when alignment permits, falling back to copy otherwise
    /// (ISC-C / Check-In).
    Remap,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_write_bytes() {
        let w = WriteRequest {
            lba: 8,
            sectors: 2,
            content: WriteContent::Record {
                key: 1,
                version: 1,
                bytes: 900,
            },
        };
        assert_eq!(w.payload_bytes(), 900);
        assert_eq!(w.wire_bytes(), 1024);
    }

    #[test]
    fn merged_write_sums_fragments() {
        let w = WriteRequest {
            lba: 0,
            sectors: 1,
            content: WriteContent::Merged(vec![
                Fragment {
                    key: 1,
                    version: 1,
                    bytes: 128,
                },
                Fragment {
                    key: 2,
                    version: 4,
                    bytes: 256,
                },
            ]),
        };
        assert_eq!(w.payload_bytes(), 384);
        assert_eq!(w.wire_bytes(), 512);
    }
}
