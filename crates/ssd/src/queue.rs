//! Submission-queue depth modelling.
//!
//! NVMe exposes deep queues, but they are finite: when the paper's ISC-A
//! floods the device with one CoW command per journal entry, commands
//! serialize behind the queue. [`CommandQueue`] models this: a command may
//! start only when a slot is free; otherwise it waits for the earliest
//! completion.

use checkin_sim::{EventQueue, SimTime, TraceEvent, TraceLayer, Tracer};

/// A fixed-depth in-flight command window.
///
/// # Examples
///
/// ```
/// use checkin_ssd::CommandQueue;
/// use checkin_sim::SimTime;
///
/// let mut q = CommandQueue::new(1);
/// let t0 = q.admit(SimTime::ZERO);
/// q.complete(SimTime::from_nanos(100));
/// // Depth 1: the next command cannot start before the first completes.
/// let t1 = q.admit(SimTime::ZERO);
/// assert_eq!((t0.as_nanos(), t1.as_nanos()), (0, 100));
/// ```
#[derive(Debug, Clone)]
pub struct CommandQueue {
    depth: usize,
    /// Completion times, ordered by the same timing wheel the simulator's
    /// event loop uses. Valid because completions are never registered
    /// earlier than the latest one already retired: `done >= start >= at`,
    /// and admission retires only completions `<= at`.
    inflight: EventQueue<()>,
    tracer: Tracer,
}

impl CommandQueue {
    /// Creates a queue admitting up to `depth` concurrent commands.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be positive");
        CommandQueue {
            depth,
            inflight: EventQueue::with_capacity(depth),
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a trace sink; each admission then records its queue wait
    /// and the in-flight depth at start.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Earliest instant a command arriving at `at` may start. Call
    /// [`CommandQueue::complete`] with its completion time afterwards.
    pub fn admit(&mut self, at: SimTime) -> SimTime {
        while let Some(t) = self.inflight.peek_time() {
            if t <= at {
                self.inflight.pop();
            } else {
                break;
            }
        }
        let start = if self.inflight.len() < self.depth {
            at
        } else if let Some((t, ())) = self.inflight.pop() {
            t.max(at)
        } else {
            // depth == 0 with nothing in flight: admit immediately.
            at
        };
        let depth_now = self.inflight.len() as u64;
        self.tracer.emit(|| {
            TraceEvent::new(start, TraceLayer::Queue, "admit")
                .with("wait_ns", start.duration_since(at).as_nanos())
                .with("inflight", depth_now)
        });
        start
    }

    /// Registers the completion time of an admitted command.
    pub fn complete(&mut self, done: SimTime) {
        self.inflight.schedule(done, ());
    }

    /// Commands currently tracked as in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Configured depth.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_depth_immediately() {
        let mut q = CommandQueue::new(4);
        for _ in 0..4 {
            assert_eq!(q.admit(SimTime::ZERO), SimTime::ZERO);
            q.complete(SimTime::from_nanos(1_000));
        }
        // Fifth command waits for a completion slot.
        assert_eq!(q.admit(SimTime::ZERO), SimTime::from_nanos(1_000));
    }

    #[test]
    fn expired_completions_free_slots() {
        let mut q = CommandQueue::new(1);
        q.admit(SimTime::ZERO);
        q.complete(SimTime::from_nanos(10));
        // Arriving after completion: starts immediately.
        assert_eq!(q.admit(SimTime::from_nanos(20)), SimTime::from_nanos(20));
        assert_eq!(q.in_flight(), 0);
    }

    #[test]
    fn serializes_burst_beyond_depth() {
        let mut q = CommandQueue::new(2);
        let mut starts = Vec::new();
        for i in 0..6u64 {
            let s = q.admit(SimTime::ZERO);
            starts.push(s.as_nanos());
            q.complete(s + checkin_sim::SimDuration::from_nanos(100 * (i + 1)));
        }
        assert_eq!(starts[0], 0);
        assert_eq!(starts[1], 0);
        assert!(starts[2] > 0, "third command queued: {starts:?}");
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_panics() {
        CommandQueue::new(0);
    }
}
