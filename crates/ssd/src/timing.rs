//! Device-level timing parameters (host link, firmware CPU, DRAM).

use checkin_sim::SimDuration;

/// Timing model of the SSD front end.
///
/// # Examples
///
/// ```
/// use checkin_ssd::SsdTiming;
///
/// let t = SsdTiming::paper_default();
/// assert!(t.link_transfer(4096).as_nanos() > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsdTiming {
    /// Host link (PCIe/NVMe) payload bandwidth in bytes per second.
    pub link_bytes_per_sec: u64,
    /// Fixed per-command interface overhead (doorbell, fetch, completion).
    pub cmd_overhead: SimDuration,
    /// Firmware cost to parse and dispatch one command.
    pub cpu_cmd_cost: SimDuration,
    /// Firmware cost to decode one entry of a batched CoW/checkpoint
    /// command.
    pub cpu_cow_entry_cost: SimDuration,
    /// DRAM buffer access per mapping unit moved through the data cache.
    pub dram_unit_cost: SimDuration,
    /// Submission-queue depth: commands beyond this wait host-side.
    pub queue_depth: usize,
}

impl SsdTiming {
    /// PCIe Gen3 x4-class defaults matching the paper's Table I host
    /// interface.
    pub fn paper_default() -> Self {
        SsdTiming {
            link_bytes_per_sec: 3_200_000_000,
            cmd_overhead: SimDuration::from_micros(5),
            cpu_cmd_cost: SimDuration::from_nanos(1_500),
            cpu_cow_entry_cost: SimDuration::from_nanos(300),
            dram_unit_cost: SimDuration::from_nanos(200),
            queue_depth: 32,
        }
    }

    /// Time to move `bytes` across the host link.
    pub fn link_transfer(&self, bytes: u64) -> SimDuration {
        debug_assert!(self.link_bytes_per_sec > 0);
        SimDuration::from_nanos(
            (bytes.saturating_mul(1_000_000_000) / self.link_bytes_per_sec).max(1),
        )
    }
}

impl Default for SsdTiming {
    fn default() -> Self {
        SsdTiming::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_transfer_scales() {
        let t = SsdTiming::paper_default();
        assert_eq!(
            t.link_transfer(8192).as_nanos(),
            2 * t.link_transfer(4096).as_nanos()
        );
        // 4 KiB at 3.2 GB/s = 1.28 us
        assert_eq!(t.link_transfer(4096).as_nanos(), 1280);
    }

    #[test]
    fn zero_bytes_still_cost_a_nanosecond() {
        assert_eq!(SsdTiming::paper_default().link_transfer(0).as_nanos(), 1);
    }

    #[test]
    fn default_matches_paper_default() {
        assert_eq!(SsdTiming::default(), SsdTiming::paper_default());
    }
}
