//! Sudden-power-off recovery (SPOR) support — the device side of §III-G.
//!
//! The Check-In SSD writes "the target address (or key) and the version
//! for data recovery to the OOB area" of every programmed page. After an
//! unexpected power loss, firmware scans the OOB stream and rebuilds the
//! newest logical→physical state for everything that reached flash (the
//! write buffer itself is capacitor-backed, so acknowledged-but-buffered
//! data survives in DRAM).
//!
//! [`OobSnapshot`] is the result of such a scan. The engine-level recovery
//! in `checkin-core` replays the journal through normal reads; this module
//! exists to *verify the recovery contract* — every acknowledged,
//! flash-resident write must be discoverable from OOB alone — and is
//! exercised by the recovery test suite.

use std::collections::BTreeMap;

use checkin_flash::{OobKind, Ppn};

/// Newest OOB record per logical unit, as found by a full-device scan.
///
/// Entries are kept in a sorted map so iteration order is deterministic
/// (ascending lpn) — recovery walks, harness comparisons, and golden
/// outputs must not depend on hash-map ordering.
#[derive(Debug, Clone, Default)]
pub struct OobSnapshot {
    entries: BTreeMap<u64, OobRecord>,
    pages_scanned: u64,
    records_rejected: u64,
}

/// One reconstructed mapping record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OobRecord {
    /// Physical page whose OOB named this logical unit.
    pub ppn: Ppn,
    /// Device-wide write sequence number (monotone; newest wins).
    pub sequence: u64,
    /// Provenance of the write.
    pub kind: OobKind,
}

impl OobSnapshot {
    /// Newest record for a logical unit, if any write reached flash.
    pub fn lookup(&self, lpn: u64) -> Option<&OobRecord> {
        self.entries.get(&lpn)
    }

    /// Logical units discovered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the scan found nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Programmed pages visited by the scan.
    pub fn pages_scanned(&self) -> u64 {
        self.pages_scanned
    }

    /// OOB records the scan rejected because their checksum (or their
    /// data unit's) no longer verified — torn tails, retention rot.
    pub fn records_rejected(&self) -> u64 {
        self.records_rejected
    }

    /// Iterates `(lpn, record)` pairs in deterministic ascending-lpn
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &OobRecord)> + '_ {
        self.entries.iter().map(|(&l, r)| (l, r))
    }
}

impl crate::Ssd {
    /// Scans every programmed page's OOB area and reconstructs the newest
    /// record per logical unit — the SPOR primitive of §III-G.
    ///
    /// This is a *state* reconstruction (no simulated time is charged):
    /// it exists so tests can assert that the recovery metadata on flash
    /// is sufficient, not to model SPOR latency.
    pub fn scan_oob(&self) -> OobSnapshot {
        let mut snapshot = OobSnapshot::default();
        let flash = self.ftl().flash();
        let verify = self.ftl().config().verify_checksums;
        let total = flash.geometry().total_pages();
        for raw in 0..total {
            let ppn = Ppn(raw);
            let Some(content) = flash.read(ppn) else {
                continue;
            };
            snapshot.pages_scanned += 1;
            for (offset, oob) in content.oob.iter().enumerate() {
                // Same acceptance rule as the FTL rebuild: a record only
                // counts when both its OOB metadata and the data unit it
                // describes still verify — a corrupt record must never
                // win newest-wins over an intact older one.
                if verify && !(content.oob_intact(offset) && content.unit_intact(offset)) {
                    snapshot.records_rejected += 1;
                    continue;
                }
                let newer = snapshot
                    .entries
                    .get(&oob.lpn)
                    .map(|r| oob.sequence > r.sequence)
                    .unwrap_or(true);
                if newer {
                    snapshot.entries.insert(
                        oob.lpn,
                        OobRecord {
                            ppn,
                            sequence: oob.sequence,
                            kind: oob.kind,
                        },
                    );
                }
            }
        }
        snapshot
    }

    /// Verifies the SPOR contract: every *flash-resident* mapping entry
    /// that was written directly (not created by remapping) must be
    /// discoverable from the OOB scan. Remap aliases are reconstructed
    /// from the periodically persisted mapping log instead (modelled by
    /// the ISCE metadata writes), so they are exempt here.
    ///
    /// # Errors
    ///
    /// Returns the first logical unit whose flash copy is invisible to an
    /// OOB scan.
    pub fn verify_spor_contract(&self) -> Result<(), String> {
        let snapshot = self.scan_oob();
        for (lpn, loc) in self.ftl().mapping_iter() {
            if let checkin_ftl::Location::Flash(pun) = loc {
                let page = pun.page(self.ftl().units_per_page());
                let Some(record) = snapshot.lookup(lpn.0) else {
                    // A mapping with no OOB record must be a remap alias:
                    // some *other* lpn's OOB names this physical page.
                    let alias_ok = snapshot.iter().any(|(_, r)| r.ppn == page);
                    if alias_ok {
                        continue;
                    }
                    return Err(format!(
                        "{lpn} maps to {page} but no OOB record reaches that page"
                    ));
                };
                // The OOB record may be older than the current location if
                // GC moved the unit (GC copies carry fresh OOB), so the
                // record must at least point at a programmed page.
                let _ = record;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{Ssd, SsdTiming, WriteContent, WriteRequest};
    use checkin_flash::{FlashArray, FlashGeometry, FlashTiming, OobKind};
    use checkin_ftl::{Ftl, FtlConfig};
    use checkin_sim::SimTime;

    fn ssd() -> Ssd {
        let flash = FlashArray::new(FlashGeometry::small(), FlashTiming::mlc());
        let ftl = Ftl::new(
            flash,
            FtlConfig {
                unit_bytes: 512,
                write_points: 2,
                gc_threshold_blocks: 4,
                gc_soft_threshold_blocks: 8,
                write_buffer_units: 16,
                ..FtlConfig::default()
            },
        )
        .unwrap();
        Ssd::new(ftl, SsdTiming::paper_default())
    }

    fn record(lba: u64, key: u64, version: u64) -> WriteRequest {
        WriteRequest {
            lba,
            sectors: 1,
            content: WriteContent::Record {
                key,
                version,
                bytes: 512,
            },
        }
    }

    #[test]
    fn scan_finds_flushed_journal_writes() {
        let mut s = ssd();
        let mut t = SimTime::ZERO;
        for i in 0..24u64 {
            t = s
                .write(&record(1000 + i, i, 1), OobKind::Journal, t)
                .unwrap();
        }
        s.flush(t).unwrap();
        let snap = s.scan_oob();
        for i in 0..24u64 {
            let rec = snap
                .lookup(1000 + i)
                .unwrap_or_else(|| panic!("lpn {}", 1000 + i));
            assert_eq!(rec.kind, OobKind::Journal);
        }
        assert!(snap.pages_scanned() >= 3);
    }

    #[test]
    fn newest_sequence_wins_per_lpn() {
        let mut s = ssd();
        let mut t = SimTime::ZERO;
        // Write v1, flush (reaches flash), then v2, flush again.
        t = s.write(&record(7, 1, 1), OobKind::Data, t).unwrap();
        t = s.flush(t).unwrap();
        t = s.write(&record(7, 1, 2), OobKind::Data, t).unwrap();
        s.flush(t).unwrap();
        let snap = s.scan_oob();
        let rec = snap.lookup(7).unwrap();
        // Two OOB records exist for lpn 7; the scan keeps the newer one.
        assert!(rec.sequence >= 2);
    }

    #[test]
    fn scan_rejects_records_that_fail_verification() {
        let mut s = ssd();
        let mut t = SimTime::ZERO;
        for i in 0..16u64 {
            t = s.write(&record(100 + i, i, 1), OobKind::Data, t).unwrap();
        }
        s.flush(t).unwrap();
        let clean = s.scan_oob();
        assert_eq!(clean.records_rejected(), 0);
        assert!(clean.lookup(103).is_some());

        let upp = s.ftl().units_per_page();
        let pun = match s.ftl().location_of(checkin_ftl::Lpn(103)) {
            Some(checkin_ftl::Location::Flash(p)) => p,
            other => panic!("lpn 103 not on flash: {other:?}"),
        };
        assert!(s.ftl_mut().flash_mut().sabotage_corrupt_oob(
            pun.page(upp),
            pun.offset(upp),
            1 << 30
        ));
        let snap = s.scan_oob();
        assert_eq!(snap.records_rejected(), 1);
        assert!(
            snap.lookup(103).is_none(),
            "a rotted record must not enter the snapshot"
        );
        assert!(snap.lookup(104).is_some(), "neighbours are unaffected");
    }

    #[test]
    fn buffered_only_writes_are_not_on_flash() {
        let mut s = ssd();
        s.write(&record(3, 9, 1), OobKind::Data, SimTime::ZERO)
            .unwrap();
        // No flush: the write lives in the capacitor-backed buffer.
        let snap = s.scan_oob();
        assert!(snap.lookup(3).is_none());
        assert!(snap.is_empty());
    }

    #[test]
    fn spor_contract_holds_after_writes_and_remaps() {
        let mut s = ssd();
        let mut t = SimTime::ZERO;
        for i in 0..32u64 {
            t = s
                .write(&record(2000 + i, i, 3), OobKind::Journal, t)
                .unwrap();
        }
        t = s.flush(t).unwrap();
        // Remap half of them to data-area homes.
        for i in 0..16u64 {
            let e = crate::CowEntry {
                src_lba: 2000 + i,
                dst_lba: 8 * i,
                sectors: 1,
                dst_sectors: 1,
                key: i,
                merged: false,
            };
            t = s.cow_single(&e, crate::CheckpointMode::Remap, t).unwrap();
        }
        s.verify_spor_contract().unwrap();
    }

    #[test]
    fn spor_contract_survives_gc_churn() {
        let mut s = ssd();
        let mut t = SimTime::ZERO;
        for round in 1..=300u64 {
            for key in 0..64u64 {
                t = s.write(&record(key, key, round), OobKind::Data, t).unwrap();
            }
            t = s.flush(t).unwrap();
        }
        assert!(
            s.ftl().counters().get("ftl.gc_invocations") > 0,
            "churn must trigger GC"
        );
        s.verify_spor_contract().unwrap();
    }
}
