//! The SSD device: host interface, firmware timing, ISCE execution.

use checkin_flash::{FaultPhase, Fragment, OobKind, OpPhase, UnitPayload};
use checkin_ftl::{Ftl, FtlError, GcTrigger, Lpn, RebuildStats, ScrubReport, UnitWrite};
use checkin_sim::{CounterSet, Resource, SimDuration, SimTime, TraceEvent, TraceLayer, Tracer};

use crate::command::{
    CheckpointMode, CowEntry, ReadRequest, WriteContent, WriteRequest, SECTOR_BYTES,
};
use crate::error::SsdError;
use crate::isce::{plan_entry, should_background_gc, EntryPlan};
use crate::queue::CommandQueue;
use crate::timing::SsdTiming;

/// Base of the device-internal metadata LPN region (never visible to the
/// host's LBA space).
const META_LPN_BASE: u64 = u64::MAX / 2;

/// Journal units acknowledged between two metadata (recovery-log) writes
/// by the ISCE log manager.
const META_INTERVAL_UNITS: u64 = 64;

/// The simulated SSD.
///
/// Wraps an [`Ftl`] with the host-visible command set: standard block
/// reads/writes/flush/deallocate plus the paper's vendor-specific
/// extensions — single CoW, batched checkpoint, and journal deallocation —
/// all with full timing through the link, firmware CPU, queue and flash
/// resources.
///
/// # Examples
///
/// ```
/// use checkin_flash::{FlashArray, FlashGeometry, FlashTiming};
/// use checkin_ftl::{Ftl, FtlConfig};
/// use checkin_ssd::{Ssd, SsdTiming, WriteRequest, WriteContent, ReadRequest};
/// use checkin_sim::SimTime;
///
/// let flash = FlashArray::new(FlashGeometry::small(), FlashTiming::mlc());
/// let ftl = Ftl::new(flash, FtlConfig { unit_bytes: 512, write_points: 2, ..FtlConfig::default() }).unwrap();
/// let mut ssd = Ssd::new(ftl, SsdTiming::paper_default());
///
/// let done = ssd.write(
///     &WriteRequest { lba: 0, sectors: 2, content: WriteContent::Record { key: 1, version: 1, bytes: 1000 } },
///     checkin_flash::OobKind::Data,
///     SimTime::ZERO,
/// )?;
/// let (frags, _t) = ssd.read(&ReadRequest { lba: 0, sectors: 2, key: Some(1) }, done)?;
/// assert_eq!(frags[0].version, 1);
/// # Ok::<(), checkin_ssd::SsdError>(())
/// ```
#[derive(Debug)]
pub struct Ssd {
    ftl: Ftl,
    timing: SsdTiming,
    link: Resource,
    cpu: Resource,
    queue: CommandQueue,
    counters: CounterSet,
    journal_units_since_meta: u64,
    meta_seq: u64,
    /// Structured trace sink (no-op unless enabled).
    tracer: Tracer,
    /// ISCE phase time accumulated since the last
    /// [`Ssd::take_cp_phase_times`] (remap walk vs copy fallback).
    cp_phase_times: CpPhaseTimes,
    /// Reusable remap/copy classification buffers for checkpoint batches:
    /// once warm, classifying a batch performs no heap allocation.
    scratch_remaps: Vec<CowEntry>,
    scratch_copies: Vec<CowEntry>,
}

/// Device-side time split of checkpoint execution, accumulated across
/// the vendor commands issued since the last
/// [`Ssd::take_cp_phase_times`] call: the ISCE remap walk (firmware
/// mapping updates) vs the copy fallback (read-merge-write traffic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpPhaseTimes {
    /// Firmware time spent walking and updating the mapping table.
    pub remap: SimDuration,
    /// Time spent in the copy fallback (gather reads + scatter writes).
    pub copy: SimDuration,
}

/// Iterator over `(unit LPN, sectors in unit, covers whole unit)` segments
/// of a block-interface request; see [`Ssd::unit_segments`].
struct SegmentIter {
    unit_sectors: u64,
    cursor: u64,
    end: u64,
}

impl Iterator for SegmentIter {
    type Item = (Lpn, u32, bool);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.end {
            return None;
        }
        let unit = self.cursor / self.unit_sectors;
        let unit_end = (unit + 1) * self.unit_sectors;
        let seg_end = unit_end.min(self.end);
        let seg = (seg_end - self.cursor) as u32;
        self.cursor = seg_end;
        Some((Lpn(unit), seg, seg as u64 == self.unit_sectors))
    }
}

impl Ssd {
    /// Wraps an FTL with the device front end.
    pub fn new(ftl: Ftl, timing: SsdTiming) -> Self {
        Ssd {
            queue: CommandQueue::new(timing.queue_depth),
            ftl,
            timing,
            link: Resource::new("pcie"),
            cpu: Resource::new("fw-cpu"),
            counters: CounterSet::new(),
            journal_units_since_meta: 0,
            meta_seq: 0,
            tracer: Tracer::disabled(),
            cp_phase_times: CpPhaseTimes::default(),
            scratch_remaps: Vec::new(),
            scratch_copies: Vec::new(),
        }
    }

    /// Installs a trace sink on the device and every layer below it
    /// (command queue, FTL, flash array).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.queue.set_tracer(tracer.clone());
        self.ftl.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Returns and resets the ISCE phase times accumulated by checkpoint
    /// vendor commands since the previous call.
    pub fn take_cp_phase_times(&mut self) -> CpPhaseTimes {
        std::mem::take(&mut self.cp_phase_times)
    }

    /// Sectors per mapping unit.
    pub fn unit_sectors(&self) -> u32 {
        self.ftl.unit_bytes() / SECTOR_BYTES
    }

    /// The wrapped FTL (stats, invariants).
    pub fn ftl(&self) -> &Ftl {
        &self.ftl
    }

    /// Mutable FTL access (tests, fault injection).
    pub fn ftl_mut(&mut self) -> &mut Ftl {
        &mut self.ftl
    }

    /// Device-level counters (`ssd.*`).
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// Timing parameters in effect.
    pub fn timing(&self) -> &SsdTiming {
        &self.timing
    }

    /// Total busy time of the host link (utilization reporting).
    pub fn link_busy_time(&self) -> checkin_sim::SimDuration {
        self.link.busy_time()
    }

    /// Total busy time of the firmware CPU (utilization reporting).
    pub fn cpu_busy_time(&self) -> checkin_sim::SimDuration {
        self.cpu.busy_time()
    }

    /// Earliest instant at which both link and firmware CPU are idle.
    pub fn idle_at(&self) -> SimTime {
        self.link.available_at().max(self.cpu.available_at())
    }

    /// Iterates the `(lpn, covered_sectors, whole_unit)` segments of
    /// `[lba, lba + sectors)` without allocating.
    fn unit_segments(&self, lba: u64, sectors: u32) -> SegmentIter {
        SegmentIter {
            unit_sectors: self.unit_sectors() as u64,
            cursor: lba,
            end: lba + sectors as u64,
        }
    }

    /// Number of mapping units `[lba, lba + sectors)` touches.
    fn unit_span(&self, lba: u64, sectors: u32) -> u64 {
        if sectors == 0 {
            return 0;
        }
        let us = self.unit_sectors() as u64;
        (lba + sectors as u64 - 1) / us - lba / us + 1
    }

    /// Handles a block-interface read. Returns the fragments found in the
    /// range (filtered by `req.key` when set) and the completion instant.
    ///
    /// # Errors
    ///
    /// Rejects zero-length requests; propagates FTL failures other than
    /// reads of never-written space (which return no fragments, modelling
    /// a zero-fill read).
    pub fn read(
        &mut self,
        req: &ReadRequest,
        at: SimTime,
    ) -> Result<(Vec<Fragment>, SimTime), SsdError> {
        let mut fragments = Vec::new();
        let finish = self.read_into(req, at, &mut fragments)?;
        Ok((fragments, finish))
    }

    /// [`Ssd::read`] into a caller-provided buffer: appends the fragments
    /// found in the range (filtered by `req.key` when set) to `fragments`
    /// and returns the completion instant. The hot-path variant — with a
    /// reused buffer the steady-state read loop performs no heap
    /// allocation.
    ///
    /// # Errors
    ///
    /// As [`Ssd::read`].
    pub fn read_into(
        &mut self,
        req: &ReadRequest,
        at: SimTime,
        fragments: &mut Vec<Fragment>,
    ) -> Result<SimTime, SsdError> {
        if req.sectors == 0 {
            return Err(SsdError::InvalidRequest("read of zero sectors".into()));
        }
        self.counters.incr("ssd.cmd_read");
        let t0 = self.queue.admit(at);
        let cmd = self.link.schedule(t0, self.timing.cmd_overhead);
        let us = self.unit_sectors() as u64;
        let first_unit = req.lba / us;
        let last_unit = (req.lba + req.sectors as u64 - 1) / us;
        let seg_count = last_unit - first_unit + 1;
        debug_assert_eq!(seg_count, self.unit_span(req.lba, req.sectors));
        let map_cost = self.ftl.map_access_cost() * seg_count;
        let cpu = self.cpu.schedule(
            cmd.finish,
            self.timing.cpu_cmd_cost + map_cost + self.timing.dram_unit_cost * seg_count,
        );

        let mut flash_done = cpu.finish;
        for unit in first_unit..=last_unit {
            match self
                .ftl
                .read_fragments_into(Lpn(unit), cpu.finish, req.key, fragments)
            {
                Ok(done) => flash_done = flash_done.max(done),
                Err(FtlError::Unmapped(_)) => {} // zero-fill read
                Err(e) => return Err(e.into()),
            }
        }
        let bytes = req.sectors as u64 * SECTOR_BYTES as u64;
        let out = self
            .link
            .schedule(flash_done, self.timing.link_transfer(bytes));
        self.counters.add("ssd.host_read_bytes", bytes);
        self.queue.complete(out.finish);
        Ok(out.finish)
    }

    /// Handles a block-interface write. Returns the acknowledgement
    /// instant (data is power-safe in the device buffer from then on).
    ///
    /// # Errors
    ///
    /// Rejects zero-length and malformed merged requests; propagates FTL
    /// allocation failures.
    pub fn write(
        &mut self,
        req: &WriteRequest,
        kind: OobKind,
        at: SimTime,
    ) -> Result<SimTime, SsdError> {
        if req.sectors == 0 {
            return Err(SsdError::InvalidRequest("write of zero sectors".into()));
        }
        if let WriteContent::Merged(_) = &req.content {
            if req.sectors != self.unit_sectors() {
                return Err(SsdError::InvalidRequest(
                    "merged writes cover exactly one mapping unit".into(),
                ));
            }
        }
        self.counters.incr("ssd.cmd_write");
        let wire = req.wire_bytes();
        self.counters.add("ssd.host_write_bytes", wire);
        let t0 = self.queue.admit(at);
        let xfer = self.link.schedule(
            t0,
            self.timing.cmd_overhead + self.timing.link_transfer(wire),
        );
        let seg_count = self.unit_span(req.lba, req.sectors);
        let map_cost = self.ftl.map_access_cost() * seg_count;
        let cpu = self.cpu.schedule(
            xfer.finish,
            self.timing.cpu_cmd_cost + map_cost + self.timing.dram_unit_cost * seg_count,
        );
        let segments = self.unit_segments(req.lba, req.sectors);

        let mut done = cpu.finish;
        let mut remaining = match &req.content {
            WriteContent::Record { bytes, .. } => *bytes,
            WriteContent::Merged(_) | WriteContent::Tombstone { .. } => 0,
        };
        // Host metadata writes (the engine superblock) are attributed to
        // the meta phase so checkpoint-window flash ops never land in the
        // run bucket.
        let prev_phase =
            (kind == OobKind::Meta).then(|| self.ftl.flash_mut().set_op_phase(OpPhase::Meta));
        let mut loop_result = Ok(());
        for (lpn, seg, whole) in segments {
            let payload = match &req.content {
                WriteContent::Record { key, version, .. } => {
                    let take = remaining.min(seg * SECTOR_BYTES);
                    remaining -= take;
                    if take == 0 {
                        // Trailing sectors beyond the payload carry no
                        // record bytes; nothing to store.
                        continue;
                    }
                    UnitPayload::single(*key, *version, take)
                }
                WriteContent::Merged(frags) => {
                    UnitPayload::merged(frags.iter().copied().collect::<checkin_flash::FragVec>())
                }
                // A tombstone stores a zero-byte fragment: readers filter
                // it out, recovery scans see the deletion's version.
                WriteContent::Tombstone { key, version } => UnitPayload::single(*key, *version, 0),
            };
            // Every host request owns the sectors it names (journal
            // commits are sector padded, home slots are unit aligned), so
            // whole-unit sector coverage implies the write may replace the
            // unit outright. Partial coverage merges (read-modify-write),
            // charged only when the old copy is flash resident.
            match self.ftl.write(
                UnitWrite {
                    lpn,
                    payload,
                    whole_unit: whole,
                },
                kind,
                cpu.finish,
            ) {
                Ok(finish) => done = done.max(finish),
                Err(e) => {
                    loop_result = Err(e);
                    break;
                }
            }
        }
        if let Some(prev) = prev_phase {
            self.ftl.flash_mut().set_op_phase(prev);
        }
        loop_result?;

        if kind == OobKind::Journal {
            done = done.max(self.log_manager_tick(cpu.finish)?);
        }
        if kind == OobKind::Meta {
            // A host metadata write (the engine's superblock) is the
            // durability point for the mapping changes that preceded it:
            // persist the mapping log with it.
            self.ftl.persist_mapping_log();
        }
        self.queue.complete(done);
        Ok(done)
    }

    /// ISCE log manager: after enough journal traffic, persist a recovery
    /// metadata unit (target addresses + versions live in OOB already;
    /// this models the periodic mapping-log write of §III-D).
    fn log_manager_tick(&mut self, at: SimTime) -> Result<SimTime, SsdError> {
        self.journal_units_since_meta += 1;
        if self.journal_units_since_meta < META_INTERVAL_UNITS {
            return Ok(at);
        }
        self.journal_units_since_meta = 0;
        self.write_meta_unit(at)
    }

    fn write_meta_unit(&mut self, at: SimTime) -> Result<SimTime, SsdError> {
        self.meta_seq += 1;
        self.counters.incr("ssd.meta_writes");
        let lpn = Lpn(META_LPN_BASE + (self.meta_seq % 1024));
        let prev_phase = self.ftl.flash_mut().set_op_phase(OpPhase::Meta);
        let result = self.ftl.write(
            UnitWrite {
                lpn,
                payload: UnitPayload::single(u64::MAX, self.meta_seq, self.ftl.unit_bytes()),
                whole_unit: true,
            },
            OobKind::Meta,
            at,
        );
        self.ftl.flash_mut().set_op_phase(prev_phase);
        let finish = result?;
        // The recovery-log write doubles as the mapping-log persistence
        // point (§III-F): trims and remap aliases become durable here.
        self.ftl.persist_mapping_log();
        Ok(finish)
    }

    /// Flush: page out all buffered units.
    ///
    /// # Errors
    ///
    /// Propagates FTL allocation failures.
    pub fn flush(&mut self, at: SimTime) -> Result<SimTime, SsdError> {
        self.counters.incr("ssd.cmd_flush");
        let t0 = self.queue.admit(at);
        let cmd = self.link.schedule(t0, self.timing.cmd_overhead);
        let done = self.ftl.flush(cmd.finish)?;
        self.queue.complete(done);
        Ok(done)
    }

    /// Deallocates (trims) a sector range, unit by unit.
    pub fn deallocate(&mut self, lba: u64, sectors: u32, at: SimTime) -> SimTime {
        self.counters.incr("ssd.cmd_dealloc");
        let t0 = self.queue.admit(at);
        let cmd = self.link.schedule(t0, self.timing.cmd_overhead);
        let cpu = self.cpu.schedule(
            cmd.finish,
            self.timing.cpu_cmd_cost + self.ftl.map_access_cost() * self.unit_span(lba, sectors),
        );
        let prev_phase = self
            .ftl
            .flash_mut()
            .set_fault_phase(FaultPhase::HostDeallocate);
        let prev_op_phase = self.ftl.flash_mut().set_op_phase(OpPhase::Dealloc);
        for (lpn, _seg, whole) in self.unit_segments(lba, sectors) {
            // Partial-unit trims are ignored (conservative, like real
            // devices which round trims inward).
            if whole {
                self.ftl.deallocate(lpn);
            }
        }
        self.ftl.flash_mut().set_op_phase(prev_op_phase);
        self.ftl.flash_mut().set_fault_phase(prev_phase);
        self.queue.complete(cpu.finish);
        cpu.finish
    }

    /// Vendor command: one copy-on-write entry (ISC-A's unit of work).
    ///
    /// # Errors
    ///
    /// Propagates FTL failures from the copy path.
    pub fn cow_single(
        &mut self,
        entry: &CowEntry,
        mode: CheckpointMode,
        at: SimTime,
    ) -> Result<SimTime, SsdError> {
        self.counters.incr("ssd.cmd_cow");
        let t0 = self.queue.admit(at);
        // Descriptor-only transfer: no payload on the link.
        let cmd = self
            .link
            .schedule(t0, self.timing.cmd_overhead + self.timing.link_transfer(16));
        let cpu = self.cpu.schedule(
            cmd.finish,
            self.timing.cpu_cmd_cost + self.timing.cpu_cow_entry_cost,
        );
        let done = self.execute_entries(&[*entry], mode, cpu.finish)?;
        self.queue.complete(done);
        Ok(done)
    }

    /// Vendor command: a batched checkpoint request carrying many CoW
    /// entries (ISC-B and up). The device decodes the batch once, performs
    /// remaps as mapping updates, and executes the copy class as
    /// consecutive reads followed by consecutive writes.
    ///
    /// # Errors
    ///
    /// Propagates FTL failures.
    pub fn checkpoint(
        &mut self,
        entries: &[CowEntry],
        mode: CheckpointMode,
        at: SimTime,
    ) -> Result<SimTime, SsdError> {
        self.counters.incr("ssd.cmd_checkpoint");
        let t0 = self.queue.admit(at);
        let descriptor_bytes = 16 * entries.len() as u64;
        let cmd = self.link.schedule(
            t0,
            self.timing.cmd_overhead + self.timing.link_transfer(descriptor_bytes),
        );
        let cpu = self.cpu.schedule(
            cmd.finish,
            self.timing.cpu_cmd_cost + self.timing.cpu_cow_entry_cost * entries.len() as u64,
        );
        let mut done = self.execute_entries(entries, mode, cpu.finish)?;
        // Checkpoint completion persists a metadata unit (recovery point).
        done = done.max(self.write_meta_unit(done)?);
        self.queue.complete(done);
        Ok(done)
    }

    /// Executes a classified entry batch: remaps first (mapping updates on
    /// the firmware CPU), then the copy class as read phase + write phase.
    fn execute_entries(
        &mut self,
        entries: &[CowEntry],
        mode: CheckpointMode,
        at: SimTime,
    ) -> Result<SimTime, SsdError> {
        let us = self.unit_sectors();
        // Classify into the reusable scratch buffers (taken out of `self`
        // so the executor below can still borrow `self` mutably); warm
        // checkpoints allocate nothing here.
        let mut remaps = std::mem::take(&mut self.scratch_remaps);
        let mut copies = std::mem::take(&mut self.scratch_copies);
        remaps.clear();
        copies.clear();
        for e in entries {
            match plan_entry(e, mode, us) {
                EntryPlan::Remap => remaps.push(*e),
                EntryPlan::Copy => copies.push(*e),
            }
        }
        let result = self.execute_classified(&remaps, &copies, us, at);
        self.scratch_remaps = remaps;
        self.scratch_copies = copies;
        result
    }

    /// Executes an already classified batch; split from
    /// [`Ssd::execute_entries`] so the scratch buffers can be returned to
    /// their fields on every exit path.
    fn execute_classified(
        &mut self,
        remaps: &[CowEntry],
        copies: &[CowEntry],
        us: u32,
        at: SimTime,
    ) -> Result<SimTime, SsdError> {
        let mut done = at;

        if !remaps.is_empty() {
            let unit_count: u64 = remaps.iter().map(|e| (e.sectors / us).max(1) as u64).sum();
            // Two table accesses per unit: source lookup + target update.
            let cpu = self
                .cpu
                .schedule(at, self.ftl.map_access_cost() * unit_count * 2);
            let prev_phase = self
                .ftl
                .flash_mut()
                .set_fault_phase(FaultPhase::CheckpointRemap);
            let prev_op_phase = self.ftl.flash_mut().set_op_phase(OpPhase::CheckpointRemap);
            let mut remap_err = None;
            'remap: for e in remaps {
                let units = (e.sectors / us).max(1) as u64;
                for k in 0..units {
                    let src = Lpn(e.src_lba / us as u64 + k);
                    let dst = Lpn(e.dst_lba / us as u64 + k);
                    match self.ftl.remap(dst, src) {
                        Ok(()) => {}
                        // A padded log's tail unit may hold no payload and
                        // so was never written; skip it.
                        Err(FtlError::Unmapped(_)) => {
                            self.counters.incr("ssd.cow_missing_src");
                        }
                        Err(err) => {
                            remap_err = Some(err);
                            break 'remap;
                        }
                    }
                }
                self.counters.incr("ssd.remap_entries");
            }
            self.ftl.flash_mut().set_op_phase(prev_op_phase);
            self.ftl.flash_mut().set_fault_phase(prev_phase);
            if let Some(err) = remap_err {
                return Err(err.into());
            }
            self.cp_phase_times.remap += cpu.finish.saturating_duration_since(at);
            let entries = remaps.len() as u64;
            self.tracer.emit(|| {
                TraceEvent::new(at, TraceLayer::Isce, "remap_batch")
                    .with("entries", entries)
                    .with("units", unit_count)
            });
            done = done.max(cpu.finish);
        }

        if !copies.is_empty() {
            let copied_before = self.counters.get("ssd.copy_entries");
            let prev_op_phase = self.ftl.flash_mut().set_op_phase(OpPhase::CheckpointCopy);
            let result = self.execute_copies(copies, at);
            self.ftl.flash_mut().set_op_phase(prev_op_phase);
            let (writes_done, skipped) = result?;
            self.cp_phase_times.copy += writes_done.saturating_duration_since(at);
            let entries = copies.len() as u64;
            let copied = self.counters.get("ssd.copy_entries") - copied_before;
            self.tracer.emit(|| {
                TraceEvent::new(at, TraceLayer::Isce, "copy_batch")
                    .with("entries", entries)
                    .with("copied", copied)
                    .with("skipped", skipped)
            });
            done = done.max(writes_done);
        }
        Ok(done)
    }

    /// The copy fallback of [`Ssd::execute_entries`]: gather reads, then
    /// scatter writes. Returns the completion instant and how many
    /// entries were skipped because no source payload survived (already
    /// superseded or never written).
    fn execute_copies(
        &mut self,
        copies: &[CowEntry],
        at: SimTime,
    ) -> Result<(SimTime, u64), SsdError> {
        // Phase 1: consecutive reads gather each record's fragments
        // from its journal units. Merged sectors are shared by many
        // entries, so each physical unit is read once per batch and
        // served from the device read buffer afterwards.
        // BTreeMap, not HashMap: the cache never iterates today, but the
        // deterministic-sim rule (A2) bans hash-ordered containers in
        // result-affecting paths outright so a future iteration cannot
        // silently introduce run-to-run divergence.
        let mut read_cache: std::collections::BTreeMap<Lpn, Option<UnitPayload>> =
            std::collections::BTreeMap::new();
        let mut staged: Vec<(CowEntry, u32, u64)> = Vec::new();
        let mut reads_done = at;
        for e in copies {
            let mut total_bytes = 0u32;
            let mut version = 0u64;
            for (lpn, _seg, _whole) in self.unit_segments(e.src_lba, e.sectors.max(1)) {
                let cached = match read_cache.entry(lpn) {
                    std::collections::btree_map::Entry::Occupied(o) => o.into_mut(),
                    std::collections::btree_map::Entry::Vacant(v) => match self.ftl.read(lpn, at) {
                        Ok((payload, t)) => {
                            reads_done = reads_done.max(t);
                            v.insert(Some(payload))
                        }
                        Err(FtlError::Unmapped(_)) => {
                            self.counters.incr("ssd.cow_missing_src");
                            v.insert(None)
                        }
                        Err(err) => return Err(err.into()),
                    },
                };
                if let Some(payload) = cached {
                    for f in payload.fragments.iter().filter(|f| f.key == e.key) {
                        total_bytes += f.bytes;
                        version = version.max(f.version);
                    }
                }
            }
            staged.push((*e, total_bytes, version));
        }
        // Phase 2: consecutive writes scatter the gathered record over
        // its destination extent.
        let mut writes_done = reads_done;
        let mut skipped = 0u64;
        for (e, total_bytes, version) in staged {
            if total_bytes == 0 {
                self.counters.incr("ssd.cow_skipped_entries");
                skipped += 1;
                continue;
            }
            let mut remaining = total_bytes;
            for (dst_lpn, seg, whole) in self.unit_segments(e.dst_lba, e.dst_sectors.max(1)) {
                let take = remaining.min(seg * SECTOR_BYTES);
                if take == 0 {
                    break;
                }
                remaining -= take;
                // Same ownership rule as host writes (see write()).
                let t = self.ftl.write(
                    UnitWrite {
                        lpn: dst_lpn,
                        payload: UnitPayload::single(e.key, version, take),
                        whole_unit: whole,
                    },
                    OobKind::Data,
                    reads_done,
                )?;
                writes_done = writes_done.max(t);
            }
            self.counters.incr("ssd.copy_entries");
        }
        Ok((writes_done, skipped))
    }

    /// Deallocator: run background GC rounds at `at` if the FTL is under
    /// soft pressure and the device is idle. Returns the number of rounds
    /// run and the completion instant.
    ///
    /// # Errors
    ///
    /// Propagates FTL failures from GC migration.
    pub fn background_gc(
        &mut self,
        at: SimTime,
        max_rounds: u32,
    ) -> Result<(u32, SimTime), SsdError> {
        let mut done = at;
        let mut rounds = 0;
        while rounds < max_rounds {
            let idle = self.idle_at() <= done;
            if !should_background_gc(self.ftl.wants_background_gc(), idle) {
                break;
            }
            match self.ftl.run_gc_round(done, GcTrigger::Background)? {
                Some(t) => {
                    done = t;
                    rounds += 1;
                    self.counters.incr("ssd.background_gc_rounds");
                }
                None => break,
            }
        }
        // Idle windows also host static wear leveling (one round at most).
        if self.idle_at() <= done {
            if let Some(t) = self.ftl.run_wear_leveling_round(done)? {
                done = t;
                self.counters.incr("ssd.wear_level_rounds");
            }
        }
        Ok((rounds, done))
    }

    /// Deallocator: run one background integrity-scrub round at `at` if
    /// the device is idle, verifying up to `max_pages` pages'
    /// checksums. Scheduled from the same idle windows as background GC
    /// but *after* it — space reclamation has priority over latent-rot
    /// patrol. Returns the scrub outcome and the completion instant.
    ///
    /// # Errors
    ///
    /// Propagates media failures of the scrub reads themselves.
    pub fn background_scrub(
        &mut self,
        at: SimTime,
        max_pages: u32,
    ) -> Result<(ScrubReport, SimTime), SsdError> {
        if max_pages == 0 || self.idle_at() > at {
            return Ok((ScrubReport::default(), at));
        }
        let report = self.ftl.scrub_round(at, max_pages)?;
        let done = at + self.ftl.flash().timing().t_read * report.pages_scanned;
        if report.pages_scanned > 0 {
            self.counters.incr("ssd.background_scrub_rounds");
        }
        Ok((report, done))
    }

    /// True while the simulated device is frozen by an injected power cut.
    pub fn powered_off(&self) -> bool {
        self.ftl.flash().powered_off()
    }

    /// Sudden-power-off recovery (§III-G): powers the array back on,
    /// rebuilds the whole FTL from the OOB stream, the persisted mapping
    /// log, and the capacitor-backed write buffer, and resets the device
    /// log-manager state. Counted in `ssd.spor_recoveries`.
    ///
    /// # Errors
    ///
    /// Propagates [`checkin_ftl::RecoveryError`] when the rebuild finds
    /// the surviving state inconsistent.
    pub fn recover_power_loss(&mut self) -> Result<RebuildStats, SsdError> {
        self.ftl.flash_mut().power_on();
        let stats = self.ftl.rebuild_after_power_loss()?;
        self.journal_units_since_meta = 0;
        self.counters.incr("ssd.spor_recoveries");
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use checkin_flash::{FlashArray, FlashGeometry, FlashTiming};
    use checkin_ftl::FtlConfig;

    fn ssd(unit_bytes: u32) -> Ssd {
        let flash = FlashArray::new(FlashGeometry::small(), FlashTiming::mlc());
        let ftl = Ftl::new(
            flash,
            FtlConfig {
                unit_bytes,
                write_points: 2,
                gc_threshold_blocks: 4,
                gc_soft_threshold_blocks: 8,
                ..FtlConfig::default()
            },
        )
        .unwrap();
        Ssd::new(ftl, SsdTiming::paper_default())
    }

    fn record(lba: u64, sectors: u32, key: u64, version: u64) -> WriteRequest {
        WriteRequest {
            lba,
            sectors,
            content: WriteContent::Record {
                key,
                version,
                bytes: sectors * SECTOR_BYTES,
            },
        }
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut s = ssd(512);
        let t = s
            .write(&record(10, 2, 7, 3), OobKind::Data, SimTime::ZERO)
            .unwrap();
        let (frags, _) = s
            .read(
                &ReadRequest {
                    lba: 10,
                    sectors: 2,
                    key: Some(7),
                },
                t,
            )
            .unwrap();
        assert_eq!(frags.len(), 2, "one fragment per 512B unit");
        assert!(frags.iter().all(|f| f.version == 3));
    }

    #[test]
    fn read_of_unwritten_space_returns_nothing() {
        let mut s = ssd(512);
        let (frags, t) = s
            .read(
                &ReadRequest {
                    lba: 100,
                    sectors: 4,
                    key: None,
                },
                SimTime::ZERO,
            )
            .unwrap();
        assert!(frags.is_empty());
        assert!(t > SimTime::ZERO, "still pays interface costs");
    }

    #[test]
    fn zero_sector_requests_rejected() {
        let mut s = ssd(512);
        assert!(matches!(
            s.read(
                &ReadRequest {
                    lba: 0,
                    sectors: 0,
                    key: None
                },
                SimTime::ZERO
            ),
            Err(SsdError::InvalidRequest(_))
        ));
        assert!(matches!(
            s.write(&record(0, 0, 1, 1), OobKind::Data, SimTime::ZERO),
            Err(SsdError::InvalidRequest(_))
        ));
    }

    #[test]
    fn merged_write_must_be_one_sector() {
        let mut s = ssd(512);
        let bad = WriteRequest {
            lba: 0,
            sectors: 2,
            content: WriteContent::Merged(vec![Fragment {
                key: 1,
                version: 1,
                bytes: 128,
            }]),
        };
        assert!(matches!(
            s.write(&bad, OobKind::Journal, SimTime::ZERO),
            Err(SsdError::InvalidRequest(_))
        ));
    }

    #[test]
    fn checkpoint_remap_moves_mapping_without_programs() {
        let mut s = ssd(512);
        // Journal write at lba 1000, checkpoint to home lba 8.
        let t = s
            .write(&record(1000, 2, 5, 9), OobKind::Journal, SimTime::ZERO)
            .unwrap();
        let t = s.flush(t).unwrap();
        let programs_before = s.ftl().flash().counters().get("flash.program");
        let entry = CowEntry {
            src_lba: 1000,
            dst_lba: 8,
            sectors: 2,
            dst_sectors: 2,
            key: 5,
            merged: false,
        };
        let t = s.checkpoint(&[entry], CheckpointMode::Remap, t).unwrap();
        let (frags, _) = s
            .read(
                &ReadRequest {
                    lba: 8,
                    sectors: 2,
                    key: Some(5),
                },
                t,
            )
            .unwrap();
        assert_eq!(frags.len(), 2);
        assert_eq!(s.counters().get("ssd.remap_entries"), 1);
        // Only the checkpoint metadata unit may have been buffered; no
        // data-copy program happened synchronously.
        let programs_after = s.ftl().flash().counters().get("flash.program");
        assert_eq!(programs_after, programs_before);
    }

    #[test]
    fn checkpoint_copy_mode_programs_data() {
        let mut s = ssd(512);
        let t = s
            .write(&record(1000, 2, 5, 9), OobKind::Journal, SimTime::ZERO)
            .unwrap();
        let t = s.flush(t).unwrap();
        let entry = CowEntry {
            src_lba: 1000,
            dst_lba: 8,
            sectors: 2,
            dst_sectors: 2,
            key: 5,
            merged: false,
        };
        let t = s.checkpoint(&[entry], CheckpointMode::Copy, t).unwrap();
        assert_eq!(s.counters().get("ssd.copy_entries"), 1);
        let (frags, _) = s
            .read(
                &ReadRequest {
                    lba: 8,
                    sectors: 2,
                    key: Some(5),
                },
                t,
            )
            .unwrap();
        assert_eq!(frags.len(), 2);
        assert_eq!(frags[0].version, 9);
    }

    #[test]
    fn misaligned_entry_falls_back_to_copy_under_remap_mode() {
        let mut s = ssd(4096); // unit = 8 sectors
        let t = s
            .write(&record(1000, 2, 5, 9), OobKind::Journal, SimTime::ZERO)
            .unwrap();
        let t = s.flush(t).unwrap();
        // 2-sector record in an 8-sector unit: not remappable.
        let entry = CowEntry {
            src_lba: 1000,
            dst_lba: 16,
            sectors: 2,
            dst_sectors: 2,
            key: 5,
            merged: false,
        };
        s.checkpoint(&[entry], CheckpointMode::Remap, t).unwrap();
        assert_eq!(s.counters().get("ssd.remap_entries"), 0);
        assert_eq!(s.counters().get("ssd.copy_entries"), 1);
    }

    #[test]
    fn cow_single_costs_a_command_each() {
        let mut s = ssd(512);
        let mut t = SimTime::ZERO;
        for i in 0..4u64 {
            t = s
                .write(&record(1000 + 2 * i, 2, i, 1), OobKind::Journal, t)
                .unwrap();
        }
        t = s.flush(t).unwrap();
        for i in 0..4u64 {
            let e = CowEntry {
                src_lba: 1000 + 2 * i,
                dst_lba: 8 * i,
                sectors: 2,
                dst_sectors: 2,
                key: i,
                merged: false,
            };
            t = s.cow_single(&e, CheckpointMode::Copy, t).unwrap();
        }
        assert_eq!(s.counters().get("ssd.cmd_cow"), 4);
    }

    #[test]
    fn deallocate_frees_whole_units_only() {
        let mut s = ssd(4096);
        let t = s
            .write(&record(0, 8, 1, 1), OobKind::Data, SimTime::ZERO)
            .unwrap();
        let t = s.flush(t).unwrap();
        // Partial trim (2 of 8 sectors) is ignored.
        let t = s.deallocate(0, 2, t);
        let (frags, t) = s
            .read(
                &ReadRequest {
                    lba: 0,
                    sectors: 8,
                    key: Some(1),
                },
                t,
            )
            .unwrap();
        assert!(!frags.is_empty());
        // Whole-unit trim removes it.
        let t = s.deallocate(0, 8, t);
        let (frags, _) = s
            .read(
                &ReadRequest {
                    lba: 0,
                    sectors: 8,
                    key: Some(1),
                },
                t,
            )
            .unwrap();
        assert!(frags.is_empty());
    }

    #[test]
    fn journal_traffic_produces_meta_writes() {
        let mut s = ssd(512);
        let mut t = SimTime::ZERO;
        for i in 0..80u64 {
            t = s
                .write(&record(1000 + i, 1, i, 1), OobKind::Journal, t)
                .unwrap();
        }
        assert!(s.counters().get("ssd.meta_writes") >= 1);
    }

    #[test]
    fn queue_depth_backpressures_reads() {
        let flash = FlashArray::new(FlashGeometry::small(), FlashTiming::mlc());
        let ftl = Ftl::new(
            flash,
            FtlConfig {
                unit_bytes: 512,
                write_points: 2,
                gc_threshold_blocks: 4,
                gc_soft_threshold_blocks: 8,
                ..FtlConfig::default()
            },
        )
        .unwrap();
        let mut s = Ssd::new(
            ftl,
            SsdTiming {
                queue_depth: 1,
                ..SsdTiming::paper_default()
            },
        );
        let t = s
            .write(&record(0, 1, 1, 1), OobKind::Data, SimTime::ZERO)
            .unwrap();
        let t = s.flush(t).unwrap();
        // Two reads submitted at the same instant: with depth 1 the second
        // starts after the first completes.
        let (_, t1) = s
            .read(
                &ReadRequest {
                    lba: 0,
                    sectors: 1,
                    key: None,
                },
                t,
            )
            .unwrap();
        let (_, t2) = s
            .read(
                &ReadRequest {
                    lba: 0,
                    sectors: 1,
                    key: None,
                },
                t,
            )
            .unwrap();
        assert!(t2 > t1);
    }

    #[test]
    fn background_gc_runs_only_under_pressure() {
        let mut s = ssd(512);
        let (rounds, _) = s.background_gc(SimTime::ZERO, 4).unwrap();
        assert_eq!(rounds, 0, "fresh device: no GC");
    }

    #[test]
    fn background_scrub_patrols_idle_windows_and_surfaces_rot() {
        let mut s = ssd(512);
        let mut t = SimTime::ZERO;
        for i in 0..32u64 {
            t = s.write(&record(i, 1, i, 1), OobKind::Data, t).unwrap();
        }
        t = s.flush(t).unwrap();

        // Busy device: the scrubber yields.
        let (report, _) = s.background_scrub(SimTime::ZERO, 64).unwrap();
        assert_eq!(report.pages_scanned, 0, "no scrubbing while busy");

        // Corrupt one mapped unit, then scrub in a real idle window.
        let idle = t + SimDuration::from_millis(50);
        let upp = s.ftl().units_per_page();
        let pun = match s.ftl().location_of(Lpn(3)) {
            Some(checkin_ftl::Location::Flash(p)) => p,
            other => panic!("lpn 3 not on flash: {other:?}"),
        };
        let (page, offset) = (pun.page(upp), pun.offset(upp));
        assert!(s
            .ftl_mut()
            .flash_mut()
            .sabotage_corrupt_unit(page, offset, 1 << 7));
        let (report, done) = s.background_scrub(idle, 1_000).unwrap();
        assert!(report.pages_scanned > 0);
        assert_eq!(report.detected, 1);
        assert_eq!(report.quarantined, 1);
        assert!(done > idle, "scrub reads take simulated time");
        assert_eq!(s.counters().get("ssd.background_scrub_rounds"), 1);

        // The quarantined unit now fails the host read path typed.
        let err = s
            .read(
                &ReadRequest {
                    lba: 3,
                    sectors: 1,
                    key: None,
                },
                done,
            )
            .unwrap_err();
        assert!(err.is_integrity(), "quarantined read: {err}");

        // max_pages == 0 disables scrubbing entirely.
        let (report, t2) = s.background_scrub(done, 0).unwrap();
        assert_eq!(report, checkin_ftl::ScrubReport::default());
        assert_eq!(t2, done);
    }

    #[test]
    fn merged_write_spans_one_mapping_unit_at_4k() {
        let mut s = ssd(4096);
        // At a 4 KiB unit, a merged journal write covers 8 sectors.
        let good = WriteRequest {
            lba: 0,
            sectors: 8,
            content: WriteContent::Merged(vec![
                Fragment {
                    key: 1,
                    version: 1,
                    bytes: 1024,
                },
                Fragment {
                    key: 2,
                    version: 1,
                    bytes: 2048,
                },
            ]),
        };
        let t = s.write(&good, OobKind::Journal, SimTime::ZERO).unwrap();
        let (frags, _) = s
            .read(
                &ReadRequest {
                    lba: 0,
                    sectors: 8,
                    key: None,
                },
                t,
            )
            .unwrap();
        assert_eq!(frags.len(), 2);
        // A sector-sized merged write is malformed on this device.
        let bad = WriteRequest {
            lba: 8,
            sectors: 1,
            content: WriteContent::Merged(vec![Fragment {
                key: 3,
                version: 1,
                bytes: 128,
            }]),
        };
        assert!(matches!(
            s.write(&bad, OobKind::Journal, SimTime::ZERO),
            Err(SsdError::InvalidRequest(_))
        ));
    }

    #[test]
    fn empty_checkpoint_batch_is_cheap_but_persists_metadata() {
        let mut s = ssd(512);
        let meta_before = s.counters().get("ssd.meta_writes");
        let t = s
            .checkpoint(&[], CheckpointMode::Remap, SimTime::ZERO)
            .unwrap();
        assert!(t > SimTime::ZERO);
        assert_eq!(s.counters().get("ssd.meta_writes"), meta_before + 1);
        assert_eq!(s.counters().get("ssd.remap_entries"), 0);
    }

    #[test]
    fn cow_entry_for_missing_source_counts_and_moves_nothing() {
        let mut s = ssd(512);
        let e = CowEntry {
            src_lba: 5_000,
            dst_lba: 0,
            sectors: 1,
            dst_sectors: 1,
            key: 9,
            merged: false,
        };
        s.cow_single(&e, CheckpointMode::Copy, SimTime::ZERO)
            .unwrap();
        assert!(s.counters().get("ssd.cow_missing_src") >= 1);
        let (frags, _) = s
            .read(
                &ReadRequest {
                    lba: 0,
                    sectors: 1,
                    key: None,
                },
                SimTime::ZERO,
            )
            .unwrap();
        assert!(frags.is_empty(), "nothing should land at the destination");
    }

    #[test]
    fn checkpoint_preserves_invariants() {
        let mut s = ssd(512);
        let mut t = SimTime::ZERO;
        for i in 0..32u64 {
            t = s
                .write(&record(1000 + 2 * i, 2, i, 2), OobKind::Journal, t)
                .unwrap();
        }
        t = s.flush(t).unwrap();
        let entries: Vec<CowEntry> = (0..32u64)
            .map(|i| CowEntry {
                src_lba: 1000 + 2 * i,
                dst_lba: 2 * i,
                sectors: 2,
                dst_sectors: 2,
                key: i,
                merged: false,
            })
            .collect();
        // NB: sectors=2 units start at even lbas (1000 is even) so all remap.
        let t = s.checkpoint(&entries, CheckpointMode::Remap, t).unwrap();
        for i in 0..32u64 {
            s.deallocate(1000 + 2 * i, 2, t);
        }
        s.ftl().check_invariants().unwrap();
        for i in 0..32u64 {
            let (frags, _) = s
                .read(
                    &ReadRequest {
                        lba: 2 * i,
                        sectors: 2,
                        key: Some(i),
                    },
                    t,
                )
                .unwrap();
            assert!(!frags.is_empty(), "key {i} readable at home after trim");
        }
    }
}
