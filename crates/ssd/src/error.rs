//! SSD front-end error type.

use std::error::Error;
use std::fmt;

/// Failures surfaced by the device front end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsdError {
    /// Malformed host request (bad alignment, zero length, ...).
    InvalidRequest(String),
    /// Propagated FTL failure (out of space, internal bug).
    Ftl(checkin_ftl::FtlError),
    /// Failure inside sudden-power-off recovery; the device could not be
    /// brought back to a consistent state.
    Recovery(checkin_ftl::RecoveryError),
}

impl SsdError {
    /// True when this is a data-integrity failure (quarantined or
    /// poisoned unit): the device *detected* corruption and refused to
    /// serve it, as opposed to a transport or resource error. Harness
    /// verifiers accept these where data was deliberately destroyed.
    pub fn is_integrity(&self) -> bool {
        matches!(self, SsdError::Ftl(e) if e.is_integrity())
    }
}

impl fmt::Display for SsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsdError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            SsdError::Ftl(e) => write!(f, "ftl error: {e}"),
            SsdError::Recovery(e) => write!(f, "recovery failed: {e}"),
        }
    }
}

impl Error for SsdError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SsdError::Ftl(e) => Some(e),
            SsdError::Recovery(e) => Some(e),
            SsdError::InvalidRequest(_) => None,
        }
    }
}

impl From<checkin_ftl::FtlError> for SsdError {
    fn from(e: checkin_ftl::FtlError) -> Self {
        SsdError::Ftl(e)
    }
}

impl From<checkin_ftl::RecoveryError> for SsdError {
    fn from(e: checkin_ftl::RecoveryError) -> Self {
        SsdError::Recovery(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use checkin_ftl::{FtlError, Lpn};

    #[test]
    fn display_and_conversion() {
        let e: SsdError = FtlError::Unmapped(Lpn(3)).into();
        assert!(e.to_string().contains("ftl error"));
        assert!(Error::source(&e).is_some());
        let e = SsdError::InvalidRequest("zero sectors".into());
        assert!(e.to_string().contains("zero sectors"));
        assert!(Error::source(&e).is_none());
    }

    #[test]
    fn recovery_conversion() {
        let e: SsdError = checkin_ftl::RecoveryError::PoweredOff.into();
        assert!(e.to_string().contains("recovery failed"));
        assert!(Error::source(&e).is_some());
    }
}
