//! SSD front-end error type.

use std::error::Error;
use std::fmt;

/// Failures surfaced by the device front end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsdError {
    /// Malformed host request (bad alignment, zero length, ...).
    InvalidRequest(String),
    /// Propagated FTL failure (out of space, internal bug).
    Ftl(checkin_ftl::FtlError),
}

impl fmt::Display for SsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsdError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            SsdError::Ftl(e) => write!(f, "ftl error: {e}"),
        }
    }
}

impl Error for SsdError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SsdError::Ftl(e) => Some(e),
            SsdError::InvalidRequest(_) => None,
        }
    }
}

impl From<checkin_ftl::FtlError> for SsdError {
    fn from(e: checkin_ftl::FtlError) -> Self {
        SsdError::Ftl(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use checkin_ftl::{FtlError, Lpn};

    #[test]
    fn display_and_conversion() {
        let e: SsdError = FtlError::Unmapped(Lpn(3)).into();
        assert!(e.to_string().contains("ftl error"));
        assert!(Error::source(&e).is_some());
        let e = SsdError::InvalidRequest("zero sectors".into());
        assert!(e.to_string().contains("zero sectors"));
        assert!(Error::source(&e).is_none());
    }
}
