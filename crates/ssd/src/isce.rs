//! In-storage checkpointing engine (ISCE) planning logic.
//!
//! The ISCE has three roles in the paper (§III-A): the *log manager*
//! acknowledges journal writes and periodically persists recovery
//! metadata, the *checkpoint processor* executes Algorithm 1 (walk the
//! checkpoint entries, remap or copy each), and the *deallocator* frees
//! checkpointed journal logs and decides when background GC may run.
//!
//! This module holds the device-independent planning: classifying entries
//! as remap-eligible vs copy, ordering copies into consecutive reads then
//! consecutive writes, and the deallocator's GC policy. Execution (timing,
//! flash traffic) lives in [`crate::Ssd`].

use crate::command::{CheckpointMode, CowEntry};

/// Execution plan for one checkpoint entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryPlan {
    /// Update mapping only: the journal copy becomes the data copy.
    Remap,
    /// Read the journal unit(s) and program them at the destination.
    Copy,
}

/// Decides how one entry executes under `mode` with the FTL's mapping
/// unit (`unit_sectors` = unit bytes / 512).
///
/// Remapping requires that the journal log *owns whole mapping units* and
/// that the destination is unit-aligned; merged sectors are never
/// remappable (other records share their unit).
///
/// # Examples
///
/// ```
/// use checkin_ssd::{plan_entry, CheckpointMode, CowEntry, EntryPlan};
///
/// let aligned = CowEntry { src_lba: 8, dst_lba: 16, sectors: 8, dst_sectors: 8, key: 1, merged: false };
/// assert_eq!(plan_entry(&aligned, CheckpointMode::Remap, 8), EntryPlan::Remap);
/// assert_eq!(plan_entry(&aligned, CheckpointMode::Copy, 8), EntryPlan::Copy);
/// ```
pub fn plan_entry(entry: &CowEntry, mode: CheckpointMode, unit_sectors: u32) -> EntryPlan {
    match mode {
        CheckpointMode::Copy => EntryPlan::Copy,
        CheckpointMode::Remap => {
            let us = unit_sectors as u64;
            let aligned = entry.src_lba.is_multiple_of(us)
                && entry.dst_lba.is_multiple_of(us)
                && (entry.sectors as u64).is_multiple_of(us)
                && entry.sectors > 0;
            if aligned && !entry.merged {
                EntryPlan::Remap
            } else {
                EntryPlan::Copy
            }
        }
    }
}

/// Splits a batch into `(remaps, copies)` preserving order within each
/// class — the paper's "separate into consecutive read operations and
/// consecutive write operations" optimization applies to the copy class.
pub fn classify_batch(
    entries: &[CowEntry],
    mode: CheckpointMode,
    unit_sectors: u32,
) -> (Vec<CowEntry>, Vec<CowEntry>) {
    let mut remaps = Vec::new();
    let mut copies = Vec::new();
    for e in entries {
        match plan_entry(e, mode, unit_sectors) {
            EntryPlan::Remap => remaps.push(*e),
            EntryPlan::Copy => copies.push(*e),
        }
    }
    (remaps, copies)
}

/// Deallocator policy: should the device run a background GC round now?
///
/// The paper defers checkpoint-generated invalid pages to idle-time GC
/// (§III-F); foreground GC still triggers under real space pressure
/// inside the FTL itself.
pub fn should_background_gc(free_below_soft_threshold: bool, device_idle: bool) -> bool {
    free_below_soft_threshold && device_idle
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(src: u64, dst: u64, sectors: u32, merged: bool) -> CowEntry {
        CowEntry {
            src_lba: src,
            dst_lba: dst,
            sectors,
            dst_sectors: sectors,
            key: 0,
            merged,
        }
    }

    #[test]
    fn copy_mode_never_remaps() {
        let e = entry(0, 8, 8, false);
        assert_eq!(plan_entry(&e, CheckpointMode::Copy, 8), EntryPlan::Copy);
    }

    #[test]
    fn remap_requires_unit_alignment() {
        // unit = 8 sectors (4 KiB mapping on 512 B sectors)
        assert_eq!(
            plan_entry(&entry(8, 16, 8, false), CheckpointMode::Remap, 8),
            EntryPlan::Remap
        );
        // misaligned source
        assert_eq!(
            plan_entry(&entry(4, 16, 8, false), CheckpointMode::Remap, 8),
            EntryPlan::Copy
        );
        // misaligned destination
        assert_eq!(
            plan_entry(&entry(8, 12, 8, false), CheckpointMode::Remap, 8),
            EntryPlan::Copy
        );
        // partial unit length
        assert_eq!(
            plan_entry(&entry(8, 16, 4, false), CheckpointMode::Remap, 8),
            EntryPlan::Copy
        );
    }

    #[test]
    fn sector_unit_remaps_small_records() {
        // unit = 1 sector (Check-In's 512 B mapping): every sector-aligned
        // log remaps.
        assert_eq!(
            plan_entry(&entry(3, 11, 1, false), CheckpointMode::Remap, 1),
            EntryPlan::Remap
        );
        assert_eq!(
            plan_entry(&entry(3, 11, 2, false), CheckpointMode::Remap, 1),
            EntryPlan::Remap
        );
    }

    #[test]
    fn merged_sectors_always_copy() {
        assert_eq!(
            plan_entry(&entry(0, 8, 1, true), CheckpointMode::Remap, 1),
            EntryPlan::Copy
        );
    }

    #[test]
    fn zero_sector_entry_copies() {
        assert_eq!(
            plan_entry(&entry(0, 8, 0, false), CheckpointMode::Remap, 1),
            EntryPlan::Copy
        );
    }

    #[test]
    fn classify_preserves_order() {
        let batch = vec![
            entry(0, 8, 8, false),  // remap
            entry(4, 16, 8, false), // copy (misaligned)
            entry(8, 24, 8, false), // remap
        ];
        let (remaps, copies) = classify_batch(&batch, CheckpointMode::Remap, 8);
        assert_eq!(remaps.len(), 2);
        assert_eq!(copies.len(), 1);
        assert_eq!(remaps[0].src_lba, 0);
        assert_eq!(remaps[1].src_lba, 8);
    }

    #[test]
    fn background_gc_needs_idle_and_pressure() {
        assert!(should_background_gc(true, true));
        assert!(!should_background_gc(true, false));
        assert!(!should_background_gc(false, true));
    }
}
