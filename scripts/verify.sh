#!/usr/bin/env sh
# One-shot verification: build, test, quick perf suite, formatting, lints.
# Everything runs offline (no network, empty registry cache).
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release (-D warnings)"
# Warnings are denied for the whole script: one flag set means one
# build cache, and nothing below runs against a warning-dirty tree.
RUSTFLAGS="-D warnings"
export RUSTFLAGS
cargo build --release --workspace

echo "== cargo test"
cargo test --workspace -q

echo "== perfsuite --quick"
cargo run --release -p checkin-bench --bin perfsuite -- --quick --out target/BENCH_perf.quick.json

echo "== gclab --quick"
# GC victim-policy × workload placement lab (DESIGN.md §14): WAF /
# lifetime / tail-latency matrix over greedy, cost-benefit and
# windowed-greedy, plus the stream-separation A/B. Quick mode reports
# without enforcing the winner (the full matrix is the arbiter).
cargo run --release -p checkin-bench --bin gclab -- --quick --out target/BENCH_gclab.quick.json

echo "== crashmatrix --quick"
# Power-cut recovery sweep (DESIGN.md §9): cuts inside checkpoint
# remapping and GC, shadow-model durability verification, sabotage
# self-test. Exits non-zero on any acked-write loss or resurrection.
cargo run --release -p checkin-bench --bin crashmatrix -- --quick

echo "== corruptmatrix --quick"
# Data-integrity sweep (DESIGN.md §13): torn writes, retention bit-rot
# in data and OOB, misdirected programs; shadow-model verification that
# no read is ever silently wrong, scrub/heal coverage, sabotage
# self-test with verification disabled. Exits non-zero on any escape.
cargo run --release -p checkin-bench --bin corruptmatrix -- --quick

echo "== checkin trace smoke run"
# Cross-layer tracing (DESIGN.md §10): a tiny checkpointing run must
# emit JSON-lines events from all six layers.
cargo run --release -p checkin-cli --bin checkin -- \
    trace --queries 4000 --threads 8 --record-count 500 --mix WO \
    --interval-ms 5 --events 200000 > target/trace_smoke.jsonl
for layer in engine journal queue isce ftl flash; do
    grep -q "\"layer\":\"$layer\"" target/trace_smoke.jsonl || {
        echo "verify: FAIL — no trace events from layer '$layer'" >&2
        exit 1
    }
done

echo "== checkin-analyze (--format json)"
# Static invariant checker (DESIGN.md §11, §15): workspace call-graph
# rules A1-A8 — no panic paths or dropped Results in the cross-crate
# recovery cone, no nondeterminism in sim crates, phase-tagged flash
# counters, no truncating address casts, lock order per function (A5)
# and across call edges (A8), conserved counter families, fleet-ready
# shared state. Scopes and snippet-anchored exceptions live in
# analyze.toml. The JSON report is the machine contract: the gate
# fails on any finding or stale allowlist entry, and the per-rule
# timings land on stderr either way.
cargo run --release -q -p checkin-analyze -- --format json > target/analyze.json
grep -q '"ok": true' target/analyze.json || {
    echo "verify: FAIL — checkin-analyze reported findings (see target/analyze.json)" >&2
    exit 1
}

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: OK"
