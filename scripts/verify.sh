#!/usr/bin/env sh
# One-shot verification: build, test, quick perf suite, formatting, lints.
# Everything runs offline (no network, empty registry cache).
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test --workspace -q

echo "== perfsuite --quick"
cargo run --release -p checkin-bench --bin perfsuite -- --quick --out target/BENCH_perf.quick.json

echo "== gclab --quick"
# GC victim-policy × workload placement lab (DESIGN.md §14): WAF /
# lifetime / tail-latency matrix over greedy, cost-benefit and
# windowed-greedy, plus the stream-separation A/B. Quick mode reports
# without enforcing the winner (the full matrix is the arbiter).
cargo run --release -p checkin-bench --bin gclab -- --quick --out target/BENCH_gclab.quick.json

echo "== crashmatrix --quick"
# Power-cut recovery sweep (DESIGN.md §9): cuts inside checkpoint
# remapping and GC, shadow-model durability verification, sabotage
# self-test. Exits non-zero on any acked-write loss or resurrection.
cargo run --release -p checkin-bench --bin crashmatrix -- --quick

echo "== corruptmatrix --quick"
# Data-integrity sweep (DESIGN.md §13): torn writes, retention bit-rot
# in data and OOB, misdirected programs; shadow-model verification that
# no read is ever silently wrong, scrub/heal coverage, sabotage
# self-test with verification disabled. Exits non-zero on any escape.
cargo run --release -p checkin-bench --bin corruptmatrix -- --quick

echo "== checkin trace smoke run"
# Cross-layer tracing (DESIGN.md §10): a tiny checkpointing run must
# emit JSON-lines events from all six layers.
cargo run --release -p checkin-cli --bin checkin -- \
    trace --queries 4000 --threads 8 --record-count 500 --mix WO \
    --interval-ms 5 --events 200000 > target/trace_smoke.jsonl
for layer in engine journal queue isce ftl flash; do
    grep -q "\"layer\":\"$layer\"" target/trace_smoke.jsonl || {
        echo "verify: FAIL — no trace events from layer '$layer'" >&2
        exit 1
    }
done

echo "== checkin-analyze"
# Static invariant checker (DESIGN.md §11): no panic paths in recovery
# code, no nondeterminism in sim crates, phase-tagged flash counters,
# no truncating address casts, declared lock order. Scopes and
# documented exceptions live in analyze.toml. Exits non-zero on any
# finding or stale allowlist entry.
cargo run --release -q -p checkin-analyze

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: OK"
