#!/usr/bin/env sh
# One-shot verification: build, test, quick perf suite, formatting, lints.
# Everything runs offline (no network, empty registry cache).
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test --workspace -q

echo "== perfsuite --quick"
cargo run --release -p checkin-bench --bin perfsuite -- --quick --out target/BENCH_perf.quick.json

echo "== crashmatrix --quick"
# Power-cut recovery sweep (DESIGN.md §9): cuts inside checkpoint
# remapping and GC, shadow-model durability verification, sabotage
# self-test. Exits non-zero on any acked-write loss or resurrection.
cargo run --release -p checkin-bench --bin crashmatrix -- --quick

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: OK"
