//! Shopping-cart scenario: an online-shopping session store with mixed
//! record sizes (another of the paper's motivating services).
//!
//! Carts are read-modify-write objects — fetch the cart, add an item,
//! write it back (YCSB workload F) — and they *grow*: a cart's value size
//! varies from a hundred bytes to several KiB. This exercises the
//! sector-aligned journaling across all of Algorithm 2's paths: size
//! classes, merging, and compression of multi-sector values.
//!
//! ```sh
//! cargo run --release --example shopping_cart
//! ```

use checkin_core::{KvSystem, Strategy, SystemConfig};
use checkin_workload::{AccessPattern, OpMix, RecordSizes};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Shopping carts: read-modify-write sessions, mixed value sizes\n");

    // Four cart-size profiles, mirroring the paper's Fig. 13(b) patterns.
    let profiles = [
        ("mostly-small", RecordSizes::pattern1()),
        ("balanced", RecordSizes::pattern2()),
        ("large-carts", RecordSizes::pattern3()),
        ("uniform-mix", RecordSizes::pattern4()),
    ];

    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>16}",
        "cart profile", "queries/s", "p99.9", "space overhead", "journal sectors"
    );
    for (name, sizes) in profiles {
        let mut config = SystemConfig::for_strategy(Strategy::CheckIn);
        config.total_queries = 16_000;
        config.threads = 32;
        config.workload.record_count = 5_000; // active sessions
        config.workload.mix = OpMix::F; // 50% reads, 50% RMW
        config.workload.pattern = AccessPattern::Zipfian;
        config.workload.sizes = sizes;

        let mut system = KvSystem::new(config)?;
        let report = system.run()?;
        println!(
            "{:<14} {:>12.0} {:>12} {:>13.2}x {:>16}",
            name,
            report.throughput,
            format!("{}", report.latency.p999),
            report.journal_space_overhead,
            report.write_query_bytes / 512,
        );
    }

    // The trade-off the paper discusses in §III-H: alignment wastes some
    // journal space (classes round up) but wins it back by merging small
    // values and compressing large ones.
    println!(
        "\nSpace overhead stays near 1.0x for small-value profiles because\n\
         partial logs merge into shared sectors; large carts compress, so\n\
         multi-sector logs often *shrink* below their raw size."
    );
    Ok(())
}
