//! Quickstart: run the same write-heavy workload under conventional
//! checkpointing and under Check-In, and compare what the paper measures.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use checkin_core::{KvSystem, Strategy, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Check-In quickstart: baseline vs in-storage checkpointing\n");

    for strategy in [Strategy::Baseline, Strategy::CheckIn] {
        // Start from the paper-like defaults and scale the run so this
        // example finishes in a few seconds.
        let mut config = SystemConfig::for_strategy(strategy);
        config.total_queries = 30_000;
        config.threads = 32;
        config.workload.record_count = 4_000;

        let mut system = KvSystem::new(config)?;
        let report = system.run()?;

        println!("=== {} ===", report.strategy);
        println!("  throughput        {:>10.0} queries/s", report.throughput);
        println!("  mean latency      {:>10}", report.latency.mean);
        println!("  p99.9 latency     {:>10}", report.latency.p999);
        println!(
            "  checkpoints       {:>10}   (mean {}, max {})",
            report.checkpoints, report.checkpoint_mean, report.checkpoint_max
        );
        println!(
            "  checkpoint writes {:>10}   flash programs (\"redundant writes\")",
            report.checkpoint_flash_programs
        );
        println!(
            "  remap / copy      {:>6} / {:<6} checkpoint entries",
            report.remapped_entries, report.copied_entries
        );
        println!(
            "  I/O amplification {:>10.2}x  (host bytes / write-query bytes)",
            report.io_amplification
        );
        println!("  flash WAF         {:>10.2}x", report.waf);
        println!();
    }

    println!(
        "Check-In turns checkpoint copies into FTL mapping updates: the\n\
         journal log already on flash *becomes* the data-area copy, so the\n\
         redundant write count collapses and checkpoint-time tail latency\n\
         disappears (paper, Figs. 8-9)."
    );
    Ok(())
}
