//! Social-feed scenario: a messaging/feed service with highly skewed,
//! small updates — the workload class the paper's introduction motivates
//! (social networking, messaging).
//!
//! Hot conversations receive most writes (scrambled-zipfian keys), and the
//! payloads are small (a message row is a few hundred bytes). This is the
//! worst case for conventional checkpointing — lots of sub-sector values —
//! and the best case for sector-aligned journaling.
//!
//! ```sh
//! cargo run --release --example social_feed
//! ```

use checkin_core::{KvSystem, Strategy, SystemConfig};
use checkin_sim::SimTime;
use checkin_workload::{AccessPattern, OpMix, RecordSizes};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Social feed: zipfian, small messages, update-heavy\n");

    let mut results = Vec::new();
    for strategy in Strategy::all() {
        let mut config = SystemConfig::for_strategy(strategy);
        config.total_queries = 24_000;
        config.threads = 64;
        config.workload.record_count = 8_000; // conversations
        config.workload.pattern = AccessPattern::Zipfian;
        config.workload.mix = OpMix::A; // read timeline, post message
                                        // Message rows: 96 B reactions up to 1 KiB posts, mostly small.
        config.workload.sizes = RecordSizes::weighted(vec![
            (96, 25),
            (180, 25),
            (300, 20),
            (450, 15),
            (700, 10),
            (1024, 5),
        ]);

        let mut system = KvSystem::new(config)?;
        let report = system.run()?;

        // Spot-check a hot conversation end to end.
        let (engine, ssd) = system.verify_parts();
        let read = engine.get(ssd, 0, SimTime::from_nanos(u64::MAX / 2))?;
        assert!(read.version >= 1);

        results.push(report);
    }

    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>10} {:>14}",
        "config", "queries/s", "p99.9", "cp time", "cp writes", "space overhead"
    );
    for r in &results {
        println!(
            "{:<10} {:>12.0} {:>12} {:>12} {:>10} {:>13.2}x",
            r.strategy.label(),
            r.throughput,
            format!("{}", r.latency.p999),
            format!("{}", r.checkpoint_mean),
            r.checkpoint_flash_programs,
            r.journal_space_overhead,
        );
    }

    let base = &results[0];
    let checkin = &results[4];
    println!(
        "\nCheck-In vs baseline: p99.9 {:.1}% lower, {:.1}% fewer redundant writes.",
        (1.0 - checkin.latency.p999.as_nanos() as f64 / base.latency.p999.as_nanos() as f64)
            * 100.0,
        (1.0 - checkin.checkpoint_flash_programs as f64
            / base.checkpoint_flash_programs.max(1) as f64)
            * 100.0,
    );
    let life = checkin.lifetime_vs(base);
    if life.is_finite() {
        println!("Lifetime x{life:.2} (Equation 1 ratio).");
    } else {
        println!("(No GC pressure in this run: flash lifetime unaffected either way.)");
    }
    Ok(())
}
