//! Durability demo: crash the host mid-workload and recover (§III-G).
//!
//! The engine journals every update before acknowledging it; the SSD's
//! write buffer is power-protected. We simulate a host crash (all engine
//! state — key map and JMT — is lost), then rebuild from the device
//! alone: data-area homes give the last checkpoint, a journal-area scan
//! replays everything after it.
//!
//! ```sh
//! cargo run --release --example durability_demo
//! ```

use std::collections::HashMap;

use checkin_core::{EngineError, KvEngine, Layout, Strategy};
use checkin_flash::{FlashArray, FlashGeometry, FlashTiming};
use checkin_ftl::{Ftl, FtlConfig};
use checkin_sim::{SimRng, SimTime};
use checkin_ssd::{Ssd, SsdTiming};

const RECORDS: u64 = 2_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let strategy = Strategy::CheckIn;
    let flash = FlashArray::new(FlashGeometry::paper_default(), FlashTiming::mlc());
    let ftl = Ftl::new(
        flash,
        FtlConfig {
            unit_bytes: strategy.default_unit_bytes(),
            ..FtlConfig::default()
        },
    )?;
    let mut ssd = Ssd::new(ftl, SsdTiming::paper_default());
    let layout = Layout::new(RECORDS, 4096 + 16, strategy.default_unit_bytes(), 1 << 14);
    let mut engine = KvEngine::new(strategy, layout, 0.7);

    // Load and run a few thousand updates with periodic checkpoints.
    println!("loading {RECORDS} records...");
    let records: Vec<(u64, u32)> = (0..RECORDS)
        .map(|k| (k, 300 + (k % 7) as u32 * 300))
        .collect();
    let mut t = engine.load(&mut ssd, &records, SimTime::ZERO)?;
    let mut expected: HashMap<u64, u64> = (0..RECORDS).map(|k| (k, 1)).collect();

    let mut rng = SimRng::seed_from(2026);
    println!("applying 12,000 updates with a checkpoint every 4,000...");
    for i in 0..12_000u64 {
        let key = rng.gen_range(RECORDS);
        let bytes = 1 + rng.gen_range(2048) as u32;
        match engine.update(&mut ssd, key, bytes, t) {
            Ok(done) => t = done,
            Err(EngineError::JournalFull) => {
                t = engine.checkpoint(&mut ssd, t)?.finish;
                t = engine.update(&mut ssd, key, bytes, t)?;
            }
            Err(e) => return Err(e.into()),
        }
        *expected.get_mut(&key).unwrap() += 1;
        if i % 4_000 == 2_000 {
            let started = t;
            let out = engine.checkpoint(&mut ssd, t)?;
            t = out.finish;
            println!(
                "  checkpoint: {} entries, {} remapped, {} flash programs, took {}",
                out.entries,
                out.remapped,
                out.flash_programs,
                out.finish.duration_since(started)
            );
        }
    }
    let journaled_tail = engine.journal().jmt().live_keys();
    println!("\n!!! host crash — {journaled_tail} keys only in the journal, engine state lost\n");
    drop(engine);

    // Recovery: last checkpoint (data area) + journal replay.
    let (recovered, report) =
        KvEngine::recover_with_report(strategy, layout, 0.7, &mut ssd, RECORDS, t)?;
    let t = report.finish;
    println!(
        "recovered {} keys in {} ({} journal entries replayed, {} device reads)",
        report.keys_recovered,
        report.duration,
        report.journal_entries_replayed,
        report.device_reads
    );

    let mut mismatches = 0;
    for (&key, &version) in &expected {
        if recovered.version_of(key) != Some(version) {
            mismatches += 1;
        }
    }
    assert_eq!(mismatches, 0, "recovery lost committed updates");
    println!(
        "verified: all {} keys at their committed versions — zero loss",
        RECORDS
    );

    // And the recovered engine keeps working.
    let mut engine = recovered;
    let t = engine.update(&mut ssd, 0, 512, t)?;
    let read = engine.get(&mut ssd, 0, t)?;
    println!(
        "post-recovery update accepted: key 0 now at version {}",
        read.version
    );
    Ok(())
}
